//! The resumable simulation driver: the engine core as an explicit object.
//!
//! [`SimDriver`] composes the three state layers — [`Clock`](crate::clock),
//! [`Platform`](crate::platform), [`Lifecycle`](crate::lifecycle) — with a
//! scheduler, a pick policy, and an observer, and exposes the run as a
//! sequence of explicit **steps**:
//!
//! * [`step`](SimDriver::step) executes exactly one engine scheduling round
//!   — one reference tick or one bulk fast-forward window — and reports
//!   whether the run is still live;
//! * [`run_until`](SimDriver::run_until) steps until simulated time reaches
//!   a target (a step may overshoot it: bulk windows are never split, which
//!   is what keeps a stepped run byte-identical to a one-shot run);
//! * [`finish`](SimDriver::finish) steps to the end and returns the
//!   [`SimResult`].
//!
//! [`simulate`](crate::simulate) and
//! [`simulate_observed`](crate::simulate_observed) are thin wrappers that
//! construct a driver and call `finish` — there is exactly one loop body in
//! the engine. A driver is generic over its observer so the unobserved
//! instantiation ([`NullObserver`]) monomorphizes with every observation
//! branch folded away; to keep access to an observer after the run, pass a
//! `&mut dyn SimObserver` (which itself implements [`SimObserver`]).
//!
//! Driving the same schedule stepped or one-shot produces the same
//! [`SimResult`] *including* `steps_executed` and the same event stream —
//! the `driver_differential` suite in `crates/verify` holds this
//! byte-identical over the stream-equivalence corpus.

use crate::clock::{auto_horizon, Clock};
use crate::events::{EventKernel, WindowMode};
use crate::lifecycle::Lifecycle;
use crate::observe::{AdmissionEvent, NullObserver, SimObserver};
use crate::pick::Picker;
use crate::platform::Platform;
use crate::reference::{HorizonScan, ViewRebuild};
use crate::result::SimResult;
use crate::sched_api::{Allocation, OnlineScheduler, TickView};
use crate::sim::{HandoffMode, PlatformMode, SimConfig};
use crate::trace::Trace;
use dagsched_core::{ticks_to_complete, JobId, NodeId, Result, SchedError, Time};
use dagsched_workload::Instance;

/// Scratch buffers reused across every step (no per-tick allocation):
/// the tick view, validation output, expired ids, picked nodes,
/// per-processor continuations, the fast-forward claim list, and the
/// observation payload builders.
#[derive(Default)]
struct StepScratch {
    view_jobs: Vec<(JobId, u32)>,
    completions: Vec<JobId>,
    alloc: Allocation,
    expired: Vec<JobId>,
    picked: Vec<NodeId>,
    continuations: Vec<NodeId>,
    /// Fast-forward claim list: `(job, node, units)` with the per-tick rate
    /// of the processor each node is bound to.
    claimed: Vec<(JobId, NodeId, u64)>,
    adm_events: Vec<AdmissionEvent>,
    node_done: Vec<(JobId, NodeId)>,
    progress: Vec<(JobId, u64)>,
}

/// A resumable simulation run. See the [module docs](self).
pub struct SimDriver<'a, O: SimObserver = NullObserver> {
    inst: &'a Instance,
    sched: &'a mut dyn OnlineScheduler,
    cfg: SimConfig,
    obs: O,
    clock: Clock,
    platform: Platform,
    life: Lifecycle,
    picker: Picker,
    kernel: EventKernel,
    trace: Option<Trace>,
    /// Whether the event-driven fast-forward path is engaged (pinned at
    /// construction: scheduler opt-in, deterministic pick, no trace).
    fast_forward: bool,
    /// Whether the scheduler's stability is *bounded*
    /// ([`OnlineScheduler::bounded_stability`]): fast-forward windows are
    /// additionally capped at [`OnlineScheduler::stable_until`], and
    /// allocation-idle stretches may be bulk-skipped (the plan boundary —
    /// not the per-tick re-decision — is what ends an idle stretch).
    bounded: bool,
    /// Whether the [`EventKernel`] is maintained at all
    /// ([`SimConfig::window`] is [`WindowMode::EventKernel`]). Governs the
    /// expiry index and idle-skip source on *both* execution paths.
    kernel_on: bool,
    /// Whether fast-forward windows come from the kernel (`kernel_on`, the
    /// fast-forward path is engaged, and the scheduler's completion keys
    /// are stable). Otherwise the fast-forward path falls back to the
    /// [`HorizonScan`] twin.
    kernel_windows: bool,
    /// Whether the scheduler handoff runs on the maintained view + delta
    /// path ([`HandoffMode::Delta`]). Otherwise every step rebuilds the
    /// view via the frozen [`ViewRebuild`] twin and calls `allocate_into`.
    delta_on: bool,
    /// Whether the platform runs grouped arithmetic
    /// ([`PlatformMode::Grouped`]). Governs the kernel's completion-entry
    /// re-push rule: the grouped path re-pushes a node's entry after any
    /// claim gap (frontiers are not monotone across groups — see
    /// [`events`](crate::events)); the frozen scalar twin keeps the
    /// pre-group moved-frontier-only rule.
    grouped: bool,
    /// `obs.is_active()`, pinned at construction; a compile-time `false`
    /// for the [`NullObserver`] instantiation.
    observing: bool,
    done: bool,
    poisoned: bool,
    scratch: StepScratch,
}

impl<'a> SimDriver<'a, NullObserver> {
    /// An unobserved driver for `sched` on `inst` under `cfg`.
    pub fn new(
        inst: &'a Instance,
        sched: &'a mut dyn OnlineScheduler,
        cfg: &SimConfig,
    ) -> SimDriver<'a, NullObserver> {
        SimDriver::with_observer(inst, sched, cfg, NullObserver)
    }
}

impl<'a, O: SimObserver> SimDriver<'a, O> {
    /// A driver whose event stream feeds `obs`. Fires
    /// [`SimObserver::on_start`] immediately (construction is the start of
    /// the run). When the observer is active, the scheduler is asked to
    /// record admission decisions, exactly as in
    /// [`simulate_observed`](crate::simulate_observed).
    ///
    /// # Panics
    /// When the platform configuration is inconsistent with the instance
    /// (group total ≠ `m`, or the scalar twin paired with a heterogeneous
    /// platform). [`simulate`](crate::simulate) and
    /// [`simulate_observed`](crate::simulate_observed) pre-validate via
    /// [`SimConfig::resolve_groups`] and surface this as an error instead.
    pub fn with_observer(
        inst: &'a Instance,
        sched: &'a mut dyn OnlineScheduler,
        cfg: &SimConfig,
        mut obs: O,
    ) -> SimDriver<'a, O> {
        let cfg = cfg.clone();
        let jobs = inst.jobs();
        let n = jobs.len();
        let horizon = cfg.horizon.unwrap_or_else(|| auto_horizon(inst));
        let trace = cfg.record_trace.then(Trace::new);
        let observing = obs.is_active();
        if observing {
            sched.enable_admission_reporting();
        }
        let groups = cfg
            .resolve_groups(inst.m())
            .expect("platform configuration is inconsistent with the instance");
        let platform = Platform::with_groups(groups, sched.group_aware(), n);
        obs.on_start(inst.m(), platform.speed(), horizon);
        if !platform.groups().is_uniform() {
            obs.on_platform(platform.groups());
        }
        // The fast-forward path needs every source of per-tick variation
        // pinned down: a scheduler whose allocation is stable between
        // events (fully, or boundedly with `stable_until` capping every
        // window), a deterministic pick policy, and no per-tick trace.
        let stable = sched.allocation_stable_between_events();
        let bounded = !stable && sched.bounded_stability();
        let fast_forward = cfg.fast_forward
            && trace.is_none()
            && cfg.pick.fast_forward_safe()
            && (stable || bounded);
        let bounded = bounded && fast_forward;
        let kernel_on = matches!(cfg.window, WindowMode::EventKernel);
        // Kernel windows additionally need stable completion keys: a
        // claimed node's entry is re-keyed only when its frontier moves,
        // which is sound only if the allocation cannot silently reshuffle
        // between events.
        let kernel_windows = kernel_on && fast_forward && sched.completion_keys_stable();
        let delta_on = matches!(cfg.handoff, HandoffMode::Delta);
        let mut kernel = EventKernel::new(n);
        if kernel_on {
            kernel.arm_horizon(horizon);
            kernel.arm_arrival(jobs[0].arrival);
        }
        SimDriver {
            clock: Clock::new(jobs[0].arrival, horizon),
            platform,
            life: Lifecycle::new(n),
            picker: Picker::new(cfg.pick.clone()),
            kernel,
            trace,
            fast_forward,
            bounded,
            kernel_on,
            kernel_windows,
            delta_on,
            grouped: matches!(cfg.platform, PlatformMode::Grouped),
            observing,
            done: false,
            poisoned: false,
            scratch: StepScratch::default(),
            inst,
            sched,
            cfg,
            obs,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// Whether the run has ended ([`SimObserver::on_end`] has fired).
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The clock layer (read-only).
    #[inline]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The platform layer (read-only).
    #[inline]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The lifecycle layer (read-only).
    #[inline]
    pub fn lifecycle(&self) -> &Lifecycle {
        &self.life
    }

    /// Execute one engine scheduling round: one reference tick, or one bulk
    /// fast-forward window. Returns `Ok(true)` while the run is live;
    /// `Ok(false)` once it has ended (the first such call fires
    /// [`SimObserver::on_end`]; further calls are no-ops).
    ///
    /// # Errors
    /// [`SchedError::InvalidAllocation`] exactly as
    /// [`simulate`](crate::simulate). An error poisons the driver: every
    /// later `step`/`run_until`/`finish` fails.
    pub fn step(&mut self) -> Result<bool> {
        if self.poisoned {
            return Err(SchedError::InvalidAllocation(
                "driver was poisoned by an earlier invalid allocation".into(),
            ));
        }
        if self.done {
            return Ok(false);
        }
        let jobs = self.inst.jobs();
        if !((self.life.pending_arrivals() || !self.life.alive.is_empty())
            && self.clock.before_horizon())
        {
            self.obs.on_end(self.clock.now());
            self.done = true;
            return Ok(false);
        }

        // Skip idle gaps between arrival waves. (The run guard above
        // ensures an arrival is pending whenever nothing is alive, so both
        // sources always have a target here.)
        if self.life.alive.is_empty() {
            let next = if self.kernel_on {
                self.kernel
                    .armed_arrival()
                    .expect("pending arrival is armed")
            } else {
                jobs[self.life.next_arrival].arrival
            };
            if next > self.clock.now() {
                self.clock.skip_idle_to(next);
            }
        }
        let t = self.clock.now();
        // `Some(units)` on a uniform platform — the scalar twin's (and the
        // common case's) single hoisted rate. Heterogeneous platforms walk
        // the per-processor rates with a placement cursor instead.
        let uniform_units = self.platform.uniform_units();

        // 1. Arrivals.
        let first_arrival = self.life.next_arrival;
        let arrived = self.life.admit_arrivals(
            jobs,
            t,
            self.platform.work_scale(),
            self.sched,
            &mut self.obs,
        );
        if arrived && self.kernel_on {
            // Arm each admitted zero-tail job's expiry boundary and re-arm
            // the arrival cursor past the admitted batch.
            for job in &jobs[first_arrival..self.life.next_arrival] {
                if job.profit.tail_value() == 0 {
                    self.kernel.arm_expiry(job.id, job.last_useful_abs());
                }
            }
            match jobs.get(self.life.next_arrival) {
                Some(next) => self.kernel.arm_arrival(next.arrival),
                None => self.kernel.disarm_arrival(),
            }
        }
        if self.observing && arrived {
            self.forward_admissions(t);
        }

        // 2. Expiry: zero-tail jobs that can no longer earn anything even
        // if they complete this very tick (completion time would be t+1).
        let expired_any = if self.kernel_on {
            self.life.expire_hopeless_indexed(
                t,
                &mut self.kernel,
                self.sched,
                &mut self.obs,
                &mut self.scratch.expired,
            )
        } else {
            HorizonScan::expire(
                &mut self.life,
                jobs,
                t,
                self.sched,
                &mut self.obs,
                &mut self.scratch.expired,
            )
        };
        if self.observing && expired_any {
            self.forward_admissions(t);
        }

        // 3. Ask the scheduler. Delta handoff: the maintained view is
        // already current (phases 1–2 and the previous step's execution
        // kept it patched), so offer the scheduler the accumulated delta
        // first and fall back to a full `allocate_into` over the same view
        // if it declines. Rebuild handoff: the frozen twin reconstructs
        // the view from scratch into the hoisted buffer.
        if self.delta_on {
            let view = TickView::new(self.platform.m(), t, self.life.view())
                .with_groups(self.platform.groups());
            if !self
                .sched
                .allocate_delta(&self.life.delta, &view, &mut self.scratch.alloc)
            {
                self.sched.allocate_into(&view, &mut self.scratch.alloc);
            }
            self.life.delta.clear();
        } else {
            ViewRebuild::build(&self.life, &mut self.scratch.view_jobs);
            self.life.delta.clear();
            self.sched.allocate_into(
                &TickView::new(self.platform.m(), t, &self.scratch.view_jobs)
                    .with_groups(self.platform.groups()),
                &mut self.scratch.alloc,
            );
        }

        // 4. Validate.
        {
            let life = &self.life;
            if let Err(e) = self
                .platform
                .validate(t, &self.scratch.alloc, |id| life.is_alive(id))
            {
                self.poisoned = true;
                self.done = true;
                return Err(e);
            }
        }

        if let Some(tr) = self.trace.as_mut() {
            tr.push(t, &self.scratch.alloc);
        }

        // 5. Fast-forward: with a stable scheduler and a deterministic
        // picker, nothing observable changes until the next event. Claim
        // this tick's nodes exactly as the reference path's first picking
        // round would, find the widest window in which no claimed node can
        // finish and no arrival / expiry / horizon boundary falls, and
        // advance the whole window in one engine step.
        if self.fast_forward {
            // Kernel windows: stamp this step's claim epoch; every node
            // claimed below refreshes its stamp, and its completion entry
            // is (re-)pushed only when its frontier actually moved.
            let epoch = if self.kernel_windows {
                self.kernel.begin_step()
            } else {
                0
            };
            let sc = &mut self.scratch;
            sc.claimed.clear();
            // Minimum over claimed nodes of the ticks until completion,
            // ceil(remaining / units): within `min_q - 1` ticks no claimed
            // node finishes, so the ready sets — and with them every pick
            // and every allocation — are frozen. On the kernel path the
            // same quantity lives in the heap as per-node completion
            // frontiers `t + q - 1` instead of a per-step fold.
            let mut min_q = u64::MAX;
            let mut cursor = 0usize;
            for &(id, k) in &sc.alloc {
                let l = self.life.live[id.index()]
                    .as_mut()
                    .expect("validated alive");
                self.picker
                    .pick_into(&l.state, &l.busy, k as usize, &mut sc.picked);
                for (i, &node) in sc.picked.iter().enumerate() {
                    l.busy[node.index()] = true;
                    l.dirty.push(node.0);
                    // The i-th picked node binds to the i-th processor the
                    // entry consumes — the same pairing the reference
                    // path's per-processor loop realizes.
                    let (pu, grp) = match uniform_units {
                        Some(u) => (u, 0u32),
                        None => (
                            self.platform.proc_units()[cursor + i],
                            self.platform.proc_group()[cursor + i],
                        ),
                    };
                    let rem = l.state.node_remaining(node).units();
                    let q = ticks_to_complete(rem, pu);
                    if self.kernel_windows {
                        let frontier = t.after(q - 1);
                        let prev = l.armed_done[node.index()];
                        // Grouped platforms additionally re-push after any
                        // claim gap: a node re-claimed onto a faster group
                        // can reproduce a frontier whose entry was already
                        // discarded as epoch-stale (see `events`). The
                        // scalar twin keeps the frozen moved-frontier-only
                        // rule, sound under uniform monotonicity.
                        let gap_repush = self.grouped && l.claim_epoch[node.index()] + 1 != epoch;
                        if prev != frontier || gap_repush {
                            l.armed_done[node.index()] = frontier;
                            self.kernel
                                .arm_completion(id, node, grp, frontier, prev != Time::MAX);
                        }
                        l.claim_epoch[node.index()] = epoch;
                    } else {
                        min_q = min_q.min(q);
                    }
                    sc.claimed.push((id, node, pu));
                }
                cursor += k as usize;
            }
            // Bounded stability: the plan may change at the scheduler's
            // next boundary even with no job event in between, so every
            // window is additionally capped at `stable_until`. `None`
            // means no further boundary (stable to the next event, like a
            // fully stable scheduler); a boundary at or before `t` means a
            // single-tick window.
            let bound_cap = if self.bounded {
                match self.sched.stable_until(t) {
                    Some(until) if until > t => until.since(t),
                    Some(_) => 1,
                    None => u64::MAX,
                }
            } else {
                u64::MAX
            };
            // Window width in ticks. Every cap is ≥ 1 (after the idle
            // skip the next arrival is strictly in the future, after step 2
            // every zero-tail job is strictly before its expiry boundary,
            // and the run guard keeps t < horizon), so s == 0 iff a claimed
            // node completes this very tick — which runs on the reference
            // path. An empty claim set (empty allocation) also runs the
            // reference tick: the naive path counts allocation-idle ticks
            // one by one, and `ticks_simulated` must stay byte-identical.
            if !sc.claimed.is_empty() {
                let s = if self.kernel_windows {
                    self.kernel.window(t, &self.life)
                } else {
                    HorizonScan::window(min_q, jobs, &self.life, &self.clock, t)
                }
                .min(bound_cap);
                if s > 0 {
                    // No claimed node completes within the window: each
                    // consumes its processor's full rate per tick
                    // (remaining > s·units of that processor), exactly as
                    // `s` reference ticks would, and no carryover,
                    // completion or hook can fire.
                    let mut total = 0u64;
                    for &(id, node, pu) in &sc.claimed {
                        let l = self.life.live[id.index()]
                            .as_mut()
                            .expect("claimed implies live");
                        l.state.advance_bulk(node, s * pu);
                        total += s * pu;
                    }
                    self.platform.record_units(total);
                    if self.observing {
                        // `claimed` lists each alloc entry's nodes
                        // contiguously, in alloc order: walk it once to sum
                        // each job's per-tick rate over its claimed nodes.
                        sc.progress.clear();
                        let mut rest = sc.claimed.as_slice();
                        for &(id, _) in &sc.alloc {
                            let cnt = rest.iter().take_while(|&&(j, _, _)| j == id).count();
                            let rate: u64 = rest[..cnt].iter().map(|&(_, _, pu)| pu).sum();
                            rest = &rest[cnt..];
                            sc.progress.push((id, s * rate));
                        }
                        let vj: &[(JobId, u32)] = if self.delta_on {
                            self.life.view()
                        } else {
                            &sc.view_jobs
                        };
                        self.obs.on_window(t, s, vj, &sc.alloc, &sc.progress);
                    }
                    for &(id, _) in &sc.alloc {
                        self.life.live[id.index()]
                            .as_mut()
                            .expect("validated alive")
                            .release_claims();
                    }
                    self.clock.advance_window(s);
                    return Ok(true);
                }
            } else if self.bounded && sc.alloc.is_empty() && !self.life.alive.is_empty() {
                // Bounded schedulers idle *deliberately*: an empty
                // allocation with alive jobs is a plan gap (no slot at this
                // tick), and within `bound_cap` the per-tick re-decision
                // cannot change it. Skip the whole gap in one window — the
                // reference path would emit `s` identical empty-allocation
                // ticks, which the event log coalesces into exactly this
                // window, and `advance_window` charges the same
                // `ticks_simulated`. Restricted to bounded schedulers so
                // fully stable schedulers keep their frozen per-tick idle
                // accounting. When the last alive job left during this
                // step's own event phases the window has no job boundary
                // left to cap it — fall through to the single reference
                // tick the naive path charges before its run guard ends
                // the run.
                let s = if self.kernel_windows {
                    self.kernel.window(t, &self.life)
                } else {
                    HorizonScan::window(u64::MAX, jobs, &self.life, &self.clock, t)
                }
                .min(bound_cap);
                if s > 0 {
                    if self.observing {
                        sc.progress.clear();
                        let vj: &[(JobId, u32)] = if self.delta_on {
                            self.life.view()
                        } else {
                            &sc.view_jobs
                        };
                        self.obs.on_window(t, s, vj, &sc.alloc, &sc.progress);
                    }
                    self.clock.advance_window(s);
                    return Ok(true);
                }
            }
            // A completion is due this tick (or nothing was claimed):
            // release the claim marks and run the tick on the reference
            // path below (which re-picks the same nodes and handles
            // completion, carryover and unlocking).
            for &(id, _) in &sc.alloc {
                self.life.live[id.index()]
                    .as_mut()
                    .expect("validated alive")
                    .release_claims();
            }
        }

        // 6. Execute (reference path).
        let sc = &mut self.scratch;
        sc.completions.clear();
        if self.observing {
            sc.progress.clear();
            sc.node_done.clear();
        }
        let mut cursor = 0usize;
        for &(id, k) in &sc.alloc {
            let l = self.life.live[id.index()]
                .as_mut()
                .expect("validated alive");
            let mut entry_units = 0u64;
            // Nodes that become ready *during* this tick may only be
            // continued by the processor whose completion unlocked them —
            // any other processor has already spent this tick's time.
            // They are marked busy globally and kept in a per-processor
            // continuation list.
            for j in 0..k {
                let mut budget = match uniform_units {
                    Some(u) => u,
                    None => self.platform.proc_units()[cursor + j as usize],
                };
                sc.continuations.clear();
                while budget > 0 {
                    let node = match sc.continuations.pop() {
                        Some(n) => n,
                        None => {
                            self.picker.pick_into(&l.state, &l.busy, 1, &mut sc.picked);
                            match sc.picked.first() {
                                Some(&n) => {
                                    l.busy[n.index()] = true;
                                    l.dirty.push(n.0);
                                    n
                                }
                                None => break,
                            }
                        }
                    };
                    let (consumed, node_finished) = l.state.advance(node, budget);
                    self.platform.record_units(consumed);
                    entry_units += consumed;
                    budget -= consumed;
                    if !node_finished {
                        break;
                    }
                    if self.observing {
                        sc.node_done.push((id, node));
                    }
                    // Lock newly-ready successors for the rest of the tick;
                    // this processor may continue into them if allowed.
                    // (Disjoint field borrows: the spec is read through
                    // `l.state` while `l.busy`/`l.dirty` mutate — no Arc
                    // clone per completed node.)
                    for &succ in l.state.spec().successors(node) {
                        if l.state.is_ready(succ) && !l.busy[succ.index()] {
                            l.busy[succ.index()] = true;
                            l.dirty.push(succ.0);
                            if self.cfg.carryover {
                                sc.continuations.push(succ);
                            }
                        }
                    }
                    if !self.cfg.carryover {
                        break;
                    }
                }
            }
            l.release_claims();
            if self.observing {
                sc.progress.push((id, entry_units));
            }
            if l.state.is_complete() {
                sc.completions.push(id);
            }
            cursor += k as usize;
        }
        if self.observing {
            let vj: &[(JobId, u32)] = if self.delta_on {
                self.life.view()
            } else {
                &sc.view_jobs
            };
            self.obs.on_window(t, 1, vj, &sc.alloc, &sc.progress);
            for &(id, node) in &sc.node_done {
                self.obs.on_node_complete(t, id, node);
            }
        }

        // Patch the maintained view's ready counts: node completions in
        // the execution loop above are the only thing that moves them, and
        // only for allocated jobs. Jobs completing this step skip the patch
        // — their removal in phase 7 covers it. (After the observer call:
        // the window payload carries the view the *scheduler* saw.)
        for &(id, _) in &sc.alloc {
            let l = self.life.live[id.index()]
                .as_ref()
                .expect("validated alive");
            if !l.state.is_complete() {
                self.life.patch_ready(id);
            }
        }

        // 7. Completions take effect at t+1.
        let t_done = t.after(1);
        self.life
            .complete(jobs, t_done, &sc.completions, self.sched, &mut self.obs);
        let completed_any = !sc.completions.is_empty();
        if completed_any && self.kernel_on {
            for &id in &sc.completions {
                self.kernel.disarm_expiry(id);
            }
        }
        if self.observing && completed_any {
            self.forward_admissions(t_done);
        }

        self.clock.advance_tick();
        Ok(true)
    }

    /// Drain the scheduler's recorded admission decisions and forward them
    /// to the observer at `at` — the one shared implementation behind the
    /// arrival, expiry, and completion drain points (the stream position of
    /// each batch is fixed by where `step` calls this).
    fn forward_admissions(&mut self, at: Time) {
        self.sched
            .drain_admission_events(&mut self.scratch.adm_events);
        for ev in self.scratch.adm_events.drain(..) {
            self.obs.on_admission(at, ev);
        }
    }

    /// Step until simulated time reaches `target` or the run ends,
    /// whichever comes first. A step may overshoot the target — bulk
    /// fast-forward windows are never split, which is what keeps a stepped
    /// run byte-identical to a one-shot run. Returns `Ok(true)` while the
    /// run is live.
    ///
    /// # Errors
    /// As [`step`](Self::step).
    pub fn run_until(&mut self, target: Time) -> Result<bool> {
        if self.poisoned {
            // Re-raise the canonical poisoned-driver error.
            self.step()?;
        }
        while !self.done && self.clock.now() < target {
            self.step()?;
        }
        Ok(!self.done)
    }

    /// Step to the end of the run and return the result.
    ///
    /// # Errors
    /// As [`step`](Self::step).
    pub fn finish(mut self) -> Result<SimResult> {
        while self.step()? {}
        Ok(SimResult {
            scheduler: self.sched.name(),
            outcomes: self.life.outcomes,
            total_profit: self.life.total_profit,
            scaled_units_processed: self.platform.scaled_units_processed(),
            work_scale: self.platform.work_scale(),
            ticks_simulated: self.clock.ticks_simulated(),
            steps_executed: self.clock.steps_executed(),
            end_time: self.clock.now(),
            trace: self.trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::JobStatus;
    use crate::sched_api::JobInfo;
    use crate::sim::{simulate, SimConfig};
    use dagsched_workload::WorkloadGen;

    /// Work-conserving FIFO-by-arrival test scheduler (mirrors the one in
    /// `sim::tests`): hands each alive job as many processors as it has
    /// ready nodes, in arrival order.
    struct Greedy;

    impl OnlineScheduler for Greedy {
        fn name(&self) -> String {
            "greedy-test".into()
        }
        fn on_arrival(&mut self, _job: &JobInfo, _now: Time) {}
        fn on_completion(&mut self, _id: JobId, _now: Time) {}
        fn on_expiry(&mut self, _id: JobId, _now: Time) {}
        fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
            let mut left = view.m;
            let mut out = Vec::new();
            for &(id, ready) in view.jobs() {
                if left == 0 {
                    break;
                }
                let k = ready.min(left);
                if k > 0 {
                    out.push((id, k));
                    left -= k;
                }
            }
            out
        }
        fn allocation_stable_between_events(&self) -> bool {
            true
        }
    }

    fn full_eq(a: &SimResult, b: &SimResult) {
        assert!(a.same_outcome(b));
        assert_eq!(
            a.steps_executed, b.steps_executed,
            "stepped and one-shot runs must agree on engine effort too"
        );
    }

    #[test]
    fn stepped_run_matches_one_shot_on_both_paths() {
        for seed in 0..4u64 {
            let inst = WorkloadGen::standard(4, 30, seed).generate().unwrap();
            for fast_forward in [true, false] {
                let cfg = SimConfig {
                    fast_forward,
                    ..SimConfig::default()
                };
                let one_shot = simulate(&inst, &mut Greedy, &cfg).unwrap();
                let mut sched = Greedy;
                let mut drv = SimDriver::new(&inst, &mut sched, &cfg);
                let mut steps = 0u64;
                while drv.step().unwrap() {
                    steps += 1;
                }
                assert!(drv.is_done());
                assert_eq!(steps, one_shot.steps_executed);
                let stepped = drv.finish().unwrap();
                full_eq(&stepped, &one_shot);
            }
        }
    }

    #[test]
    fn run_until_pauses_and_resumes_without_perturbing_the_run() {
        let inst = WorkloadGen::standard(4, 25, 9).generate().unwrap();
        let one_shot = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
        let mut sched = Greedy;
        let cfg = SimConfig::default();
        let mut drv = SimDriver::new(&inst, &mut sched, &cfg);
        // Walk the horizon in uneven strides; each pause must leave the
        // driver at or past the target without splitting any window.
        let mut target = Time(1);
        while drv.run_until(target).unwrap() {
            assert!(drv.now() >= target || drv.is_done());
            target = target.after(7);
        }
        let stepped = drv.finish().unwrap();
        full_eq(&stepped, &one_shot);
    }

    #[test]
    fn driver_exposes_layers_readonly() {
        let inst = WorkloadGen::standard(2, 8, 3).generate().unwrap();
        let cfg = SimConfig::default();
        let mut sched = Greedy;
        let mut drv = SimDriver::new(&inst, &mut sched, &cfg);
        assert_eq!(drv.platform().m(), 2);
        assert_eq!(drv.clock().steps_executed(), 0);
        drv.step().unwrap();
        assert_eq!(drv.clock().steps_executed(), 1);
        assert!(!drv.lifecycle().alive().is_empty() || drv.lifecycle().total_profit() > 0);
    }

    #[test]
    fn invalid_allocation_poisons_the_driver() {
        use dagsched_dag::gen;
        use dagsched_workload::{Instance, JobSpec, StepProfitFn};
        struct Bad;
        impl OnlineScheduler for Bad {
            fn name(&self) -> String {
                "bad".into()
            }
            fn on_arrival(&mut self, _j: &JobInfo, _t: Time) {}
            fn on_completion(&mut self, _i: JobId, _t: Time) {}
            fn on_expiry(&mut self, _i: JobId, _t: Time) {}
            fn allocate(&mut self, _v: &TickView<'_>) -> Allocation {
                vec![(JobId(42), 1)]
            }
        }
        let inst = Instance::new(
            1,
            vec![JobSpec::new(
                JobId(0),
                Time(0),
                gen::single(5).into_shared(),
                StepProfitFn::deadline(Time(50), 1),
            )],
        )
        .unwrap();
        let mut sched = Bad;
        let cfg = SimConfig::default();
        let mut drv = SimDriver::new(&inst, &mut sched, &cfg);
        assert!(drv.step().is_err());
        // Poisoned: every later call fails rather than returning a bogus
        // partial result.
        assert!(drv.step().is_err());
        assert!(drv.run_until(Time(10)).is_err());
        assert!(drv.finish().is_err());
    }

    #[test]
    fn completed_jobs_report_through_the_lifecycle_layer() {
        let inst = WorkloadGen::standard(4, 10, 1).generate().unwrap();
        let cfg = SimConfig::default();
        let one_shot = simulate(&inst, &mut Greedy, &cfg).unwrap();
        let mut sched = Greedy;
        let mut drv = SimDriver::new(&inst, &mut sched, &cfg);
        while drv.step().unwrap() {}
        let done: usize = (0..inst.jobs().len())
            .filter(|&i| matches!(drv.lifecycle().outcomes[i], JobStatus::Completed { .. }))
            .count();
        assert_eq!(done, one_shot.completed());
        assert_eq!(drv.lifecycle().total_profit(), one_shot.total_profit);
    }
}
