//! The discrete-time execution engine: configuration and the one-shot
//! entry points.
//!
//! Two execution paths produce identical results:
//!
//! * the **naive reference path** advances one tick at a time — the direct
//!   transcription of the paper's model, kept as ground truth;
//! * the **event-driven fast-forward path** observes that between *events*
//!   (arrivals, node completions, expiries, the horizon) nothing visible to
//!   a stable scheduler changes, computes the width of that boring window,
//!   and bulk-advances every claimed node across it in one engine step —
//!   O(events) instead of O(ticks).
//!
//! Fast-forward engages only when every precondition holds: the scheduler
//! opts in via
//! [`OnlineScheduler::allocation_stable_between_events`], the pick policy is
//! deterministic ([`NodePick::fast_forward_safe`]), tracing is off, and
//! [`SimConfig::fast_forward`] (default on) is set. Anything else falls back
//! to the reference path, so opting in is always safe for correctness
//! *checking* — and the equivalence property tests in
//! `crates/engine/tests/fastforward.rs` hold the two paths byte-identical.
//!
//! Both entry points are thin wrappers over the layered, resumable
//! [`SimDriver`](crate::driver::SimDriver): [`simulate`] drives it with the
//! zero-cost [`NullObserver`] instantiation and [`simulate_observed`] with a
//! dynamic observer — there is exactly one loop body in the engine (see
//! [`driver`](crate::driver) for the layer diagram).

use crate::driver::SimDriver;
use crate::events::WindowMode;
use crate::observe::SimObserver;
use crate::pick::NodePick;
use crate::result::SimResult;
use crate::sched_api::OnlineScheduler;
use dagsched_core::{MachineGroups, Result, SchedError, Speed, Time};
use dagsched_workload::Instance;

/// How the per-step scheduler handoff (view construction + allocation) is
/// performed. Both modes are byte-identical by contract — the
/// `view_delta_differential` suite in `crates/verify` holds them so.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HandoffMode {
    /// Incremental (default): the lifecycle maintains the view persistently
    /// (admits append, terminal transitions compact, node completions patch
    /// ready counts in place) and the scheduler is offered the accumulated
    /// [`ViewDelta`](crate::sched_api::ViewDelta) via
    /// [`allocate_delta`](crate::sched_api::OnlineScheduler::allocate_delta)
    /// — O(changed) per step, with a full `allocate_into` fallback for
    /// schedulers that decline.
    #[default]
    Delta,
    /// The frozen full-rebuild twin
    /// ([`ViewRebuild`](crate::reference::ViewRebuild)): rebuild the whole
    /// view and call `allocate_into`, every step — O(alive). Kept for
    /// differential testing and the perf harness.
    Rebuild,
}

/// Which platform arithmetic drives per-tick progress. Both modes are
/// byte-identical on uniform platforms by contract — the
/// `scalar_twin_differential` suite in `crates/verify` holds them so.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlatformMode {
    /// Machine-group arithmetic (default): per-processor unit rates from
    /// the platform's [`MachineGroups`], walked by a placement cursor. The
    /// only mode that supports heterogeneous platforms.
    #[default]
    Grouped,
    /// The frozen pre-group scalar-speed twin: one hoisted `units` rate for
    /// every processor, byte-for-byte the arithmetic the engine shipped
    /// with through PR 8. Requires a uniform platform; kept for
    /// differential testing and the perf harness.
    Scalar,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Processor speed (resource augmentation). Ignored when
    /// [`groups`](SimConfig::groups) is set — the groups then define every
    /// processor's speed.
    pub speed: Speed,
    /// The machine-group platform: per-group processor counts and speeds.
    /// `None` (default) means a uniform platform of `m` processors at
    /// [`speed`](SimConfig::speed). When set, the total processor count
    /// must equal the instance's `m`.
    pub groups: Option<MachineGroups>,
    /// Platform arithmetic: the grouped path (default) or the frozen
    /// [`PlatformMode::Scalar`] twin (uniform platforms only), kept for
    /// differential testing and the perf harness.
    pub platform: PlatformMode,
    /// How ready nodes are chosen when a job gets processors.
    pub pick: NodePick,
    /// Whether a processor finishing a node mid-tick may continue on another
    /// ready node of the same job within the same tick. With carry-over, a
    /// chain of unit nodes advances exactly `speed` work per tick
    /// (Observation 1); without it, node granularity quantizes progress.
    pub carryover: bool,
    /// Hard stop; `None` derives a bound that any work-conserving schedule
    /// fits in (last useful time + total work + 1).
    pub horizon: Option<Time>,
    /// Record every tick's allocation into [`SimResult::trace`]. Costs
    /// memory proportional to simulated ticks; off by default. Forces the
    /// naive path (a trace is inherently per-tick).
    pub record_trace: bool,
    /// Allow the event-driven fast-forward path when the scheduler and pick
    /// policy support it (on by default). Turn off to force the naive
    /// reference path, e.g. for differential testing.
    pub fast_forward: bool,
    /// Next-event selection: the O(log n) [`WindowMode::EventKernel`]
    /// (default) or the frozen O(alive + claimed)
    /// [`WindowMode::ReferenceScan`] twin, kept for differential testing
    /// and the perf harness. Both are byte-identical by contract.
    pub window: WindowMode,
    /// Per-step scheduler handoff: the incremental
    /// [`HandoffMode::Delta`] path (default) or the frozen O(alive)
    /// [`HandoffMode::Rebuild`] twin, kept for differential testing and the
    /// perf harness. Both are byte-identical by contract.
    pub handoff: HandoffMode,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            speed: Speed::ONE,
            groups: None,
            platform: PlatformMode::Grouped,
            pick: NodePick::Fifo,
            carryover: true,
            horizon: None,
            record_trace: false,
            fast_forward: true,
            window: WindowMode::EventKernel,
            handoff: HandoffMode::Delta,
        }
    }
}

impl SimConfig {
    /// Default configuration at the given speed.
    pub fn at_speed(speed: Speed) -> SimConfig {
        SimConfig {
            speed,
            ..SimConfig::default()
        }
    }

    /// Default configuration on the given platform.
    pub fn on_groups(groups: MachineGroups) -> SimConfig {
        SimConfig {
            groups: Some(groups),
            ..SimConfig::default()
        }
    }

    /// Resolve the effective platform description for an instance of `m`
    /// processors, validating it against this configuration.
    ///
    /// # Errors
    /// [`SchedError::InvalidInstance`] when the group total disagrees with
    /// `m`, or when [`PlatformMode::Scalar`] is paired with a heterogeneous
    /// platform (the scalar twin has no per-group arithmetic).
    pub fn resolve_groups(&self, m: u32) -> Result<MachineGroups> {
        let groups = match &self.groups {
            Some(g) => {
                if g.total() != m {
                    return Err(SchedError::InvalidInstance(format!(
                        "platform {} has {} processors but the instance has m = {m}",
                        g,
                        g.total()
                    )));
                }
                g.clone()
            }
            None => MachineGroups::uniform(m, self.speed)?,
        };
        if self.platform == PlatformMode::Scalar && !groups.is_uniform() {
            return Err(SchedError::InvalidInstance(format!(
                "the scalar platform twin requires a uniform platform, got {groups}"
            )));
        }
        Ok(groups)
    }
}

/// Run `sched` on `inst` under `cfg`.
///
/// # Errors
/// [`SchedError`](dagsched_core::SchedError)`::InvalidAllocation` if the
/// scheduler ever over-subscribes processors, allocates to a job that is not
/// alive, allocates zero processors, or repeats a job within one tick.
/// [`SchedError::InvalidInstance`] if the configured platform is
/// inconsistent with the instance (see [`SimConfig::resolve_groups`]).
/// Engine-model violations are bugs and surface as panics, not errors.
pub fn simulate(
    inst: &Instance,
    sched: &mut dyn OnlineScheduler,
    cfg: &SimConfig,
) -> Result<SimResult> {
    cfg.resolve_groups(inst.m())?;
    SimDriver::new(inst, sched, cfg).finish()
}

/// Run `sched` on `inst` under `cfg` with `obs` receiving the event stream.
///
/// Observation never changes the schedule: the run produces the same
/// [`SimResult`] as [`simulate`], on the same execution path (fast-forward
/// stays enabled under observation — both paths emit the same stream; see
/// [`observe`](crate::observe) for the ordering and equivalence contracts).
/// When the observer is [active](SimObserver::is_active), the engine also
/// asks the scheduler to
/// [record admission decisions](OnlineScheduler::enable_admission_reporting)
/// and forwards them via [`SimObserver::on_admission`].
///
/// # Errors
/// As [`simulate`].
pub fn simulate_observed(
    inst: &Instance,
    sched: &mut dyn OnlineScheduler,
    cfg: &SimConfig,
    obs: &mut dyn SimObserver,
) -> Result<SimResult> {
    cfg.resolve_groups(inst.m())?;
    SimDriver::with_observer(inst, sched, cfg, obs).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::JobStatus;
    use crate::sched_api::{Allocation, JobInfo, TickView};
    use dagsched_core::{JobId, NodeId, SchedError, Work};
    use dagsched_dag::gen;
    use dagsched_workload::{Instance, JobSpec, StepProfitFn};
    use std::sync::Arc;

    /// Work-conserving FIFO-by-arrival test scheduler: hands each alive job
    /// as many processors as it has ready nodes, in arrival order.
    struct Greedy;

    impl OnlineScheduler for Greedy {
        fn name(&self) -> String {
            "greedy-test".into()
        }
        fn on_arrival(&mut self, _job: &JobInfo, _now: Time) {}
        fn on_completion(&mut self, _id: JobId, _now: Time) {}
        fn on_expiry(&mut self, _id: JobId, _now: Time) {}
        fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
            let mut left = view.m;
            let mut out = Vec::new();
            for &(id, ready) in view.jobs() {
                if left == 0 {
                    break;
                }
                let k = ready.min(left);
                if k > 0 {
                    out.push((id, k));
                    left -= k;
                }
            }
            out
        }
        fn allocation_stable_between_events(&self) -> bool {
            // Pure function of the view's job list and ready counts.
            true
        }
    }

    /// A scheduler that emits a fixed allocation once (for validation tests).
    struct Fixed(Option<Allocation>);

    impl OnlineScheduler for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn on_arrival(&mut self, _job: &JobInfo, _now: Time) {}
        fn on_completion(&mut self, _id: JobId, _now: Time) {}
        fn on_expiry(&mut self, _id: JobId, _now: Time) {}
        fn allocate(&mut self, _view: &TickView<'_>) -> Allocation {
            self.0.take().unwrap_or_default()
        }
    }

    fn one_job(
        dag: Arc<dagsched_dag::DagJobSpec>,
        arrival: u64,
        d: u64,
        p: u64,
        m: u32,
    ) -> Instance {
        Instance::new(
            m,
            vec![JobSpec::new(
                JobId(0),
                Time(arrival),
                dag,
                StepProfitFn::deadline(Time(d), p),
            )],
        )
        .unwrap()
    }

    #[test]
    fn single_node_completes_on_time() {
        let inst = one_job(gen::single(4).into_shared(), 0, 10, 7, 1);
        let r = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
        assert_eq!(
            r.outcomes[0],
            JobStatus::Completed {
                at: Time(4),
                profit: 7
            }
        );
        assert_eq!(r.total_profit, 7);
        assert_eq!(r.work_processed(), 4);
        assert_eq!(r.ticks_simulated, 4);
    }

    #[test]
    fn block_uses_all_processors() {
        // 8 unit nodes, m = 4: two ticks.
        let inst = one_job(gen::block(8, 1).into_shared(), 0, 10, 1, 4);
        let r = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
        assert_eq!(r.makespan(), Some(Time(2)));
    }

    #[test]
    fn speed_two_with_carryover_halves_chain_time() {
        // Chain of 10 unit nodes at speed 2: Observation 1 says span drops at
        // rate 2 → 5 ticks.
        let inst = one_job(gen::chain(10, 1).into_shared(), 0, 100, 1, 1);
        let cfg = SimConfig::at_speed(Speed::integer(2).unwrap());
        let r = simulate(&inst, &mut Greedy, &cfg).unwrap();
        assert_eq!(r.makespan(), Some(Time(5)));
        assert_eq!(r.work_processed(), 10);
    }

    #[test]
    fn speed_two_without_carryover_is_quantized() {
        // Without carry-over, each tick finishes exactly one unit node:
        // the leftover speed is wasted -> 10 ticks.
        let inst = one_job(gen::chain(10, 1).into_shared(), 0, 100, 1, 1);
        let cfg = SimConfig {
            speed: Speed::integer(2).unwrap(),
            carryover: false,
            ..SimConfig::default()
        };
        let r = simulate(&inst, &mut Greedy, &cfg).unwrap();
        assert_eq!(r.makespan(), Some(Time(10)));
    }

    #[test]
    fn rational_speed_is_exact() {
        // Speed 3/2 on a 9-unit node: scaled work 18, 3 units/tick → 6 ticks
        // (vs 9 at unit speed: exactly 1.5x).
        let inst = one_job(gen::single(9).into_shared(), 0, 100, 1, 1);
        let cfg = SimConfig::at_speed(Speed::new(3, 2).unwrap());
        let r = simulate(&inst, &mut Greedy, &cfg).unwrap();
        assert_eq!(r.makespan(), Some(Time(6)));
        assert_eq!(r.work_processed(), 9);
        assert_eq!(r.work_scale, 2);
    }

    #[test]
    fn deadline_boundary_is_inclusive() {
        // 4 work, deadline 4: completes exactly at rel time 4 → paid.
        let inst = one_job(gen::single(4).into_shared(), 3, 4, 9, 1);
        let r = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
        assert_eq!(
            r.outcomes[0],
            JobStatus::Completed {
                at: Time(7),
                profit: 9
            }
        );
        // Deadline 3: cannot make it; expires and earns nothing.
        let inst = one_job(gen::single(4).into_shared(), 3, 3, 9, 1);
        let r = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
        assert_eq!(r.outcomes[0], JobStatus::Expired { at: Time(6) });
        assert_eq!(r.total_profit, 0);
    }

    #[test]
    fn expiry_frees_processors_for_other_jobs() {
        // Job 0: hopeless (work 100, deadline 1). Job 1: fine.
        let inst = Instance::new(
            1,
            vec![
                JobSpec::new(
                    JobId(0),
                    Time(0),
                    gen::single(100).into_shared(),
                    StepProfitFn::deadline(Time(1), 50),
                ),
                JobSpec::new(
                    JobId(1),
                    Time(0),
                    gen::single(5).into_shared(),
                    StepProfitFn::deadline(Time(100), 3),
                ),
            ],
        )
        .unwrap();
        let r = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
        assert!(matches!(r.outcomes[0], JobStatus::Expired { .. }));
        assert!(r.outcomes[1].is_completed());
        assert_eq!(r.total_profit, 3);
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let inst = Instance::new(
            1,
            vec![
                JobSpec::new(
                    JobId(0),
                    Time(0),
                    gen::single(2).into_shared(),
                    StepProfitFn::deadline(Time(10), 1),
                ),
                JobSpec::new(
                    JobId(1),
                    Time(1_000_000),
                    gen::single(2).into_shared(),
                    StepProfitFn::deadline(Time(10), 1),
                ),
            ],
        )
        .unwrap();
        let r = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
        assert_eq!(r.total_profit, 2);
        assert!(
            r.ticks_simulated < 100,
            "engine iterated {} ticks; the million-tick gap must be skipped",
            r.ticks_simulated
        );
        assert_eq!(r.makespan(), Some(Time(1_000_002)));
    }

    #[test]
    fn validation_rejects_bad_allocations() {
        let inst = one_job(gen::single(5).into_shared(), 0, 50, 1, 2);
        // Over-subscription.
        let err = simulate(
            &inst,
            &mut Fixed(Some(vec![(JobId(0), 3)])),
            &SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::InvalidAllocation(_)));
        // Unknown job.
        let err = simulate(
            &inst,
            &mut Fixed(Some(vec![(JobId(7), 1)])),
            &SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::InvalidAllocation(_)));
        // Zero processors.
        let err = simulate(
            &inst,
            &mut Fixed(Some(vec![(JobId(0), 0)])),
            &SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::InvalidAllocation(_)));
        // Duplicate.
        let err = simulate(
            &inst,
            &mut Fixed(Some(vec![(JobId(0), 1), (JobId(0), 1)])),
            &SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::InvalidAllocation(_)));
    }

    #[test]
    fn lazy_scheduler_hits_horizon_with_unfinished_jobs() {
        let inst = one_job(
            gen::single(5).into_shared(),
            0,
            1_000, // far deadline
            1,
            1,
        );
        // Never allocates anything.
        struct Idle;
        impl OnlineScheduler for Idle {
            fn name(&self) -> String {
                "idle".into()
            }
            fn on_arrival(&mut self, _j: &JobInfo, _t: Time) {}
            fn on_completion(&mut self, _i: JobId, _t: Time) {}
            fn on_expiry(&mut self, _i: JobId, _t: Time) {}
            fn allocate(&mut self, _v: &TickView<'_>) -> Allocation {
                Vec::new()
            }
        }
        let r = simulate(&inst, &mut Idle, &SimConfig::default()).unwrap();
        // The job expires at its last useful time rather than running
        // forever; nothing was processed.
        assert!(matches!(r.outcomes[0], JobStatus::Expired { at } if at == Time(1_000)));
        assert_eq!(r.work_processed(), 0);
    }

    #[test]
    fn over_allocation_beyond_ready_nodes_idles() {
        // A chain on m=4 with a greedy scheduler that asks ready.min(m):
        // ready is always 1, so exactly 1 processor works; makespan = W.
        let inst = one_job(gen::chain(6, 2).into_shared(), 0, 100, 1, 4);
        let r = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
        assert_eq!(r.makespan(), Some(Time(12)));
        assert_eq!(r.work_processed(), 12);
    }

    #[test]
    fn fig1_adversarial_vs_friendly_realizes_theorem1_gap() {
        // m = 4, chain_len = 40: W = 160, L = 40 = W/m.
        let m = 4;
        let dag = gen::fig1(m, 40, 1).into_shared();
        let w = dag.total_work().as_ticks();
        let l = dag.span().as_ticks();
        let inst = one_job(dag, 0, 10_000, 1, m);

        // Adversarial picking: block first, then the chain sequentially.
        let cfg = SimConfig {
            pick: NodePick::AdversarialLowHeight,
            ..SimConfig::default()
        };
        let r = simulate(&inst, &mut Greedy, &cfg).unwrap();
        let expect_worst = (w - l) / m as u64 + l; // 30 + 40 = 70
        assert_eq!(r.makespan(), Some(Time(expect_worst)));

        // Friendly (critical-path-first): chain runs from the start → W/m.
        let cfg = SimConfig {
            pick: NodePick::CriticalPathFirst,
            ..SimConfig::default()
        };
        let r = simulate(&inst, &mut Greedy, &cfg).unwrap();
        assert_eq!(r.makespan(), Some(Time(w / m as u64)));
    }

    #[test]
    fn multi_step_profit_pays_by_completion_time() {
        let f = StepProfitFn::steps(vec![(Time(3), 10), (Time(6), 4)], 0).unwrap();
        let mk = |work: u64| {
            Instance::new(
                1,
                vec![JobSpec::new(
                    JobId(0),
                    Time(0),
                    gen::single(work).into_shared(),
                    f.clone(),
                )],
            )
            .unwrap()
        };
        // Completes at 3 → 10; at 5 → 4; can't by 6 → expires, 0.
        let r = simulate(&mk(3), &mut Greedy, &SimConfig::default()).unwrap();
        assert_eq!(r.total_profit, 10);
        let r = simulate(&mk(5), &mut Greedy, &SimConfig::default()).unwrap();
        assert_eq!(r.total_profit, 4);
        let r = simulate(&mk(9), &mut Greedy, &SimConfig::default()).unwrap();
        assert_eq!(r.total_profit, 0);
        assert!(matches!(r.outcomes[0], JobStatus::Expired { .. }));
    }

    #[test]
    fn fast_forward_collapses_long_nodes_into_steps() {
        // One 1000-unit node: the naive path iterates 1000 ticks; the
        // fast-forward path takes one bulk window plus the completion tick.
        let inst = one_job(gen::single(1000).into_shared(), 0, 5_000, 1, 1);
        let fast = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
        let naive = simulate(
            &inst,
            &mut Greedy,
            &SimConfig {
                fast_forward: false,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!(fast.same_outcome(&naive));
        assert_eq!(naive.steps_executed, 1000);
        assert_eq!(fast.ticks_simulated, 1000);
        assert_eq!(fast.steps_executed, 2);
    }

    #[test]
    fn fast_forward_stops_at_arrivals_and_expiries() {
        // Job 0 is a long runner; job 1 is hopeless and expires mid-flight;
        // job 2 arrives mid-flight. Both boundaries must be hit exactly for
        // outcomes to match the naive path.
        let inst = Instance::new(
            2,
            vec![
                JobSpec::new(
                    JobId(0),
                    Time(0),
                    gen::single(500).into_shared(),
                    StepProfitFn::deadline(Time(600), 5),
                ),
                JobSpec::new(
                    JobId(1),
                    Time(10),
                    gen::single(10_000).into_shared(),
                    StepProfitFn::deadline(Time(50), 9),
                ),
                JobSpec::new(
                    JobId(2),
                    Time(137),
                    gen::single(40).into_shared(),
                    StepProfitFn::deadline(Time(300), 3),
                ),
            ],
        )
        .unwrap();
        let fast = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
        let naive = simulate(
            &inst,
            &mut Greedy,
            &SimConfig {
                fast_forward: false,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!(fast.same_outcome(&naive));
        assert_eq!(fast.completed(), 2);
        assert_eq!(fast.expired(), 1);
        assert!(
            fast.steps_executed * 10 < naive.steps_executed,
            "fast {} vs naive {}",
            fast.steps_executed,
            naive.steps_executed
        );
    }

    #[test]
    fn non_stable_scheduler_keeps_reference_path() {
        // Fixed does not opt in: steps == ticks even with fast_forward on.
        let inst = one_job(gen::single(50).into_shared(), 0, 200, 1, 1);
        let r = simulate(
            &inst,
            &mut Fixed(Some(vec![(JobId(0), 1)])),
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.steps_executed, r.ticks_simulated);
    }

    /// Aggregating observer for the differential test below.
    #[derive(Default, PartialEq, Debug)]
    struct Rec {
        started: u32,
        ended: u32,
        arrivals: Vec<JobId>,
        window_ticks: u64,
        progress_units: u64,
        nodes_done: u64,
        completions: Vec<(JobId, Time, u64)>,
        expired: Vec<JobId>,
    }

    impl SimObserver for Rec {
        fn on_start(&mut self, _m: u32, _s: Speed, _h: Time) {
            self.started += 1;
        }
        fn on_job_arrival(&mut self, _t: Time, info: &JobInfo) {
            self.arrivals.push(info.id);
        }
        fn on_window(
            &mut self,
            _at: Time,
            ticks: u64,
            _jobs: &[(JobId, u32)],
            _alloc: &[(JobId, u32)],
            progress: &[(JobId, u64)],
        ) {
            self.window_ticks += ticks;
            self.progress_units += progress.iter().map(|&(_, u)| u).sum::<u64>();
        }
        fn on_node_complete(&mut self, _at: Time, _j: JobId, _n: NodeId) {
            self.nodes_done += 1;
        }
        fn on_job_complete(&mut self, at: Time, job: JobId, profit: u64) {
            self.completions.push((job, at, profit));
        }
        fn on_job_expired(&mut self, _at: Time, job: JobId) {
            self.expired.push(job);
        }
        fn on_end(&mut self, _at: Time) {
            self.ended += 1;
        }
    }

    #[test]
    fn observed_run_matches_unobserved_on_both_paths() {
        use dagsched_workload::WorkloadGen;
        for seed in 0..4 {
            let inst = WorkloadGen::standard(4, 30, seed).generate().unwrap();
            let plain = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
            for fast_forward in [true, false] {
                let cfg = SimConfig {
                    fast_forward,
                    ..SimConfig::default()
                };
                let mut rec = Rec::default();
                let r = simulate_observed(&inst, &mut Greedy, &cfg, &mut rec).unwrap();
                // Observation never perturbs the schedule.
                assert!(r.same_outcome(&plain), "seed {seed} ff {fast_forward}");
                // The stream accounts for every tick, every unit of work and
                // every terminal job event — on both execution paths.
                assert_eq!(rec.started, 1);
                assert_eq!(rec.ended, 1);
                assert_eq!(rec.arrivals.len(), inst.jobs().len());
                assert_eq!(rec.window_ticks, r.ticks_simulated);
                assert_eq!(rec.progress_units, r.scaled_units_processed);
                assert_eq!(rec.completions.len(), r.completed());
                assert_eq!(rec.expired.len(), r.expired());
                for &(id, at, profit) in &rec.completions {
                    assert_eq!(r.outcomes[id.index()], JobStatus::Completed { at, profit });
                }
            }
        }
    }

    #[test]
    fn work_conservation_over_random_instances() {
        use dagsched_workload::WorkloadGen;
        for seed in 0..5 {
            let inst = WorkloadGen::standard(4, 25, seed).generate().unwrap();
            let r = simulate(&inst, &mut Greedy, &SimConfig::default()).unwrap();
            // Work processed equals the sum of work of completed jobs plus
            // partial progress of expired/unfinished ones: bounded by total.
            let total: Work = inst.jobs().iter().map(|j| j.work()).sum();
            assert!(r.work_processed() <= total.units());
            let completed_work: u64 = inst
                .jobs()
                .iter()
                .filter(|j| r.outcomes[j.id.index()].is_completed())
                .map(|j| j.work().units())
                .sum();
            assert!(r.work_processed() >= completed_work);
        }
    }
}
