//! The lifecycle layer: the arrival → (expiry | completion) state machine.
//!
//! A [`Lifecycle`] owns every per-job state the engine keeps — the dense
//! slab of unfolded DAG states ([`Live`]), the arrival cursor, the alive
//! list (always in arrival order), terminal outcomes, and earned profit —
//! and the three transitions a job can make:
//!
//! * [`admit_arrivals`](Lifecycle::admit_arrivals) materializes every job
//!   with `arrival ≤ t` and runs the scheduler's and observer's arrival
//!   hooks;
//! * [`expire_hopeless`](Lifecycle::expire_hopeless) abandons zero-tail jobs
//!   past their last useful moment;
//! * [`complete`](Lifecycle::complete) retires jobs whose last node
//!   finished, paying `p(t_done − r)`.
//!
//! The scheduler and observer hooks fire *inside* the transition methods so
//! that the ordering contract of [`observe`](crate::observe) is enforced in
//! exactly one place.

use crate::observe::SimObserver;
use crate::result::JobStatus;
use crate::sched_api::{JobInfo, OnlineScheduler, ViewDelta};
use dagsched_core::{JobId, Time};
use dagsched_dag::UnfoldState;
use dagsched_workload::JobSpec;

/// Sentinel slot index for "not in the view".
const NO_SLOT: u32 = u32::MAX;

/// Per-alive-job engine bookkeeping.
pub(crate) struct Live {
    /// Unfolded DAG execution state.
    pub(crate) state: UnfoldState,
    /// Nodes claimed by a processor in the current tick (dense by node id);
    /// cleared via `dirty` after the tick.
    pub(crate) busy: Vec<bool>,
    pub(crate) dirty: Vec<u32>,
    /// Armed completion frontier per node (`Time::MAX` = never armed) —
    /// the [`EventKernel`](crate::events::EventKernel)'s validity record
    /// for this job's completion entries. Only meaningful together with a
    /// current `claim_epoch` stamp.
    pub(crate) armed_done: Vec<Time>,
    /// Kernel claim-phase epoch stamp per node: a completion entry is live
    /// only if its node was claimed in the current step.
    pub(crate) claim_epoch: Vec<u64>,
}

impl Live {
    /// Release every node claimed this tick (the single place the
    /// busy/dirty scratch pair is unwound).
    #[inline]
    pub(crate) fn release_claims(&mut self) {
        for d in self.dirty.drain(..) {
            self.busy[d as usize] = false;
        }
    }
}

/// The per-job state machine of one run. See the [module docs](self).
pub struct Lifecycle {
    /// Live execution state, dense by job index (`None` = not arrived or
    /// already terminal).
    pub(crate) live: Vec<Option<Live>>,
    /// Terminal (or at-horizon) outcome per job.
    pub(crate) outcomes: Vec<JobStatus>,
    /// Arrived, unfinished, unexpired jobs — in arrival order.
    pub(crate) alive: Vec<JobId>,
    /// The persistently-maintained scheduler view: `(id, ready_count)` per
    /// alive job, always element-for-element parallel to `alive` (same
    /// order — arrival order, which is ascending id order). Admissions
    /// append, terminal transitions compact in order (never swap-remove:
    /// [`TickView::ready_count`](crate::sched_api::TickView) binary-searches
    /// ascending ids and the observer's window payload carries this slice
    /// verbatim), and the driver patches ready counts after node
    /// completions. The frozen per-step rebuild lives on as
    /// [`ViewRebuild`](crate::reference::ViewRebuild).
    view: Vec<(JobId, u32)>,
    /// Dense id → view/alive position map (`NO_SLOT` = not in the view).
    slot: Vec<u32>,
    /// View changes accumulated since the scheduler last allocated. The
    /// driver hands this to `allocate_delta` and clears it.
    pub(crate) delta: ViewDelta,
    /// Index of the next not-yet-arrived job.
    pub(crate) next_arrival: usize,
    /// Σ profit of completed jobs.
    pub(crate) total_profit: u64,
    /// Free list of retired [`Live`] slots. Terminal transitions push here
    /// instead of dropping, and `admit_arrivals` pops + `reset_from`s, so an
    /// arrival storm is allocation-free once the pool reaches the high-water
    /// mark of concurrently alive jobs.
    pool: Vec<Live>,
}

impl Lifecycle {
    /// Fresh state for an instance of `n` jobs.
    pub(crate) fn new(n: usize) -> Lifecycle {
        let mut live: Vec<Option<Live>> = Vec::with_capacity(n);
        live.resize_with(n, || None);
        Lifecycle {
            live,
            outcomes: vec![JobStatus::Unfinished; n],
            alive: Vec::new(),
            view: Vec::new(),
            slot: vec![NO_SLOT; n],
            delta: ViewDelta::default(),
            next_arrival: 0,
            total_profit: 0,
            pool: Vec::new(),
        }
    }

    /// Pooled slots currently available for reuse (test/diagnostic hook).
    #[cfg(test)]
    pub(crate) fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Jobs currently alive, in arrival order.
    #[inline]
    pub fn alive(&self) -> &[JobId] {
        &self.alive
    }

    /// The maintained scheduler view: `(id, ready_count)` per alive job, in
    /// arrival order — what [`ViewRebuild`](crate::reference::ViewRebuild)
    /// would build from scratch, kept current incrementally.
    #[inline]
    pub fn view(&self) -> &[(JobId, u32)] {
        &self.view
    }

    /// Re-read `id`'s ready count from its unfold state and patch the
    /// maintained view (recording the change in the delta) if it moved.
    /// The driver calls this after the reference execution path, the only
    /// place a ready count can change (node completions unlock successors);
    /// bulk fast-forward windows never complete a node, so they never need
    /// a patch.
    pub(crate) fn patch_ready(&mut self, id: JobId) {
        let l = self.live[id.index()].as_ref().expect("patched job is live");
        let rc = l.state.ready_count() as u32;
        let pos = self.slot[id.index()] as usize;
        debug_assert!(pos != NO_SLOT as usize, "patched job is in the view");
        if self.view[pos].1 != rc {
            self.view[pos].1 = rc;
            self.delta.ready_changed.push((id, rc));
        }
    }

    /// Remove `id` from the maintained view by ordered compaction (the
    /// entries behind it shift left one slot), recording the removal in the
    /// delta. O(tail behind the removed position).
    fn remove_from_view(&mut self, id: JobId) {
        let pos = self.slot[id.index()] as usize;
        debug_assert_eq!(self.view[pos].0, id, "slot map points at its job");
        self.view.remove(pos);
        self.slot[id.index()] = NO_SLOT;
        for j in pos..self.view.len() {
            self.slot[self.view[j].0.index()] = j as u32;
        }
        self.delta.removed.push(id);
    }

    /// Remove an ascending batch of ids from the maintained view in one
    /// compaction pass (the batched form of
    /// [`remove_from_view`](Self::remove_from_view), used by the expiry
    /// transitions which already collect their batch sorted).
    fn remove_batch_from_view(&mut self, removed: &[JobId]) {
        if removed.is_empty() {
            return;
        }
        let first = self.slot[removed[0].index()] as usize;
        let mut next = 0;
        let mut w = first;
        for r in first..self.view.len() {
            let (id, rc) = self.view[r];
            if next < removed.len() && removed[next] == id {
                next += 1;
                self.slot[id.index()] = NO_SLOT;
                self.delta.removed.push(id);
            } else {
                self.slot[id.index()] = w as u32;
                self.view[w] = (id, rc);
                w += 1;
            }
        }
        debug_assert_eq!(next, removed.len(), "every removed id was in the view");
        self.view.truncate(w);
    }

    /// Profit earned so far.
    #[inline]
    pub fn total_profit(&self) -> u64 {
        self.total_profit
    }

    /// Whether `id` is alive (bounds-checked: safe for scheduler-supplied
    /// ids).
    #[inline]
    pub fn is_alive(&self, id: JobId) -> bool {
        id.index() < self.live.len() && self.live[id.index()].is_some()
    }

    /// Whether any job has yet to arrive.
    #[inline]
    pub(crate) fn pending_arrivals(&self) -> bool {
        self.next_arrival < self.live.len()
    }

    /// Materialize every job with `arrival ≤ t`, running the scheduler's
    /// and observer's arrival hooks in arrival order. Returns whether any
    /// job arrived (the driver drains admission decisions if so).
    pub(crate) fn admit_arrivals<O: SimObserver + ?Sized>(
        &mut self,
        jobs: &[JobSpec],
        t: Time,
        scale: u64,
        sched: &mut dyn OnlineScheduler,
        obs: &mut O,
    ) -> bool {
        let first = self.next_arrival;
        while self.next_arrival < jobs.len() && jobs[self.next_arrival].arrival <= t {
            let job = &jobs[self.next_arrival];
            let mut slot = match self.pool.pop() {
                Some(mut recycled) => {
                    recycled.state.reset_from(job.dag.clone(), scale);
                    recycled
                }
                None => Live {
                    state: UnfoldState::new(job.dag.clone(), scale),
                    busy: Vec::new(),
                    dirty: Vec::new(),
                    armed_done: Vec::new(),
                    claim_epoch: Vec::new(),
                },
            };
            let nodes = slot.state.spec().num_nodes();
            slot.busy.clear();
            slot.busy.resize(nodes, false);
            slot.dirty.clear();
            slot.armed_done.clear();
            slot.armed_done.resize(nodes, Time::MAX);
            slot.claim_epoch.clear();
            slot.claim_epoch.resize(nodes, 0);
            let ready0 = slot.state.ready_count() as u32;
            self.live[job.id.index()] = Some(slot);
            self.alive.push(job.id);
            self.slot[job.id.index()] = self.view.len() as u32;
            self.view.push((job.id, ready0));
            self.delta.admitted.push((job.id, ready0));
            let info = JobInfo {
                id: job.id,
                arrival: job.arrival,
                work: job.work(),
                span: job.span(),
                profit: job.profit.clone(),
            };
            sched.on_arrival(&info, t);
            obs.on_job_arrival(t, &info);
            self.next_arrival += 1;
        }
        self.next_arrival > first
    }

    /// Abandon zero-tail jobs that can no longer earn anything even if they
    /// complete this very tick (completion time would be `t + 1`), running
    /// the expiry hooks. The expired ids are left in `expired` for the
    /// driver's fast-forward boundary logic. Returns whether any expired.
    pub(crate) fn expire_hopeless<O: SimObserver + ?Sized>(
        &mut self,
        jobs: &[JobSpec],
        t: Time,
        sched: &mut dyn OnlineScheduler,
        obs: &mut O,
        expired: &mut Vec<JobId>,
    ) -> bool {
        expired.clear();
        let live = &mut self.live;
        let outcomes = &mut self.outcomes;
        let pool = &mut self.pool;
        self.alive.retain(|&id| {
            let job = &jobs[id.index()];
            if job.profit.tail_value() == 0 && t >= job.last_useful_abs() {
                outcomes[id.index()] = JobStatus::Expired { at: t };
                if let Some(slot) = live[id.index()].take() {
                    pool.push(slot);
                }
                expired.push(id);
                false
            } else {
                true
            }
        });
        self.remove_batch_from_view(expired);
        for &id in expired.iter() {
            sched.on_expiry(id, t);
            obs.on_job_expired(t, id);
        }
        !expired.is_empty()
    }

    /// Indexed variant of [`expire_hopeless`](Self::expire_hopeless): pull
    /// the due expiries from the kernel's sorted boundary index instead of
    /// rescanning every alive job. O(due · log n) against the scan's
    /// O(alive) — and O(1) on the (typical) step where nothing is due.
    ///
    /// Byte-identical to the scan by construction: the kernel returns due
    /// ids ascending, which *is* arrival order (instance ids are assigned
    /// in arrival order), so outcomes, pool pushes, and the expiry hooks
    /// all fire in the scan's order.
    pub(crate) fn expire_hopeless_indexed<O: SimObserver + ?Sized>(
        &mut self,
        t: Time,
        kernel: &mut crate::events::EventKernel,
        sched: &mut dyn OnlineScheduler,
        obs: &mut O,
        expired: &mut Vec<JobId>,
    ) -> bool {
        expired.clear();
        kernel.pop_due_expiries(t, self, expired);
        if expired.is_empty() {
            return false;
        }
        // `alive` and `expired` are both ascending: one merge pass.
        let mut next = 0;
        self.alive.retain(|&id| {
            if next < expired.len() && expired[next] == id {
                next += 1;
                false
            } else {
                true
            }
        });
        debug_assert_eq!(next, expired.len(), "every due expiry must be alive");
        self.remove_batch_from_view(expired);
        for &id in expired.iter() {
            self.outcomes[id.index()] = JobStatus::Expired { at: t };
            if let Some(slot) = self.live[id.index()].take() {
                self.pool.push(slot);
            }
        }
        for &id in expired.iter() {
            sched.on_expiry(id, t);
            obs.on_job_expired(t, id);
        }
        true
    }

    /// Kernel validity check for a completion entry: the job is live, the
    /// node's armed frontier matches, and the node was claimed in the
    /// current step (epoch stamp).
    pub(crate) fn completion_armed(&self, job: u32, node: u32, time: Time, epoch: u64) -> bool {
        self.live
            .get(job as usize)
            .and_then(Option::as_ref)
            .is_some_and(|l| {
                l.armed_done.get(node as usize).copied() == Some(time)
                    && l.claim_epoch.get(node as usize).copied() == Some(epoch)
            })
    }

    /// Epoch-free variant of [`completion_armed`](Self::completion_armed)
    /// for heap compaction: an epoch-stale entry whose key is still armed
    /// is kept — harmless (lazy checks skip it), and retention then never
    /// has to reason about which step's epoch is "current" mid-compaction.
    pub(crate) fn completion_key_current(&self, job: u32, node: u32, time: Time) -> bool {
        self.live
            .get(job as usize)
            .and_then(Option::as_ref)
            .is_some_and(|l| l.armed_done.get(node as usize).copied() == Some(time))
    }

    /// Retire `completions` at `t_done`, paying each job's profit function
    /// at its relative completion time and running the completion hooks.
    pub(crate) fn complete<O: SimObserver + ?Sized>(
        &mut self,
        jobs: &[JobSpec],
        t_done: Time,
        completions: &[JobId],
        sched: &mut dyn OnlineScheduler,
        obs: &mut O,
    ) {
        for &id in completions {
            let job = &jobs[id.index()];
            let rel = Time(t_done.since(job.arrival));
            let profit = job.profit.eval(rel);
            self.total_profit += profit;
            self.outcomes[id.index()] = JobStatus::Completed { at: t_done, profit };
            if let Some(slot) = self.live[id.index()].take() {
                self.pool.push(slot);
            }
            // `alive` and `view` are parallel, so the slot map gives the
            // position in both: an O(tail) positional remove where the old
            // `retain(|&a| a != id)` rescanned the whole alive list.
            let pos = self.slot[id.index()] as usize;
            self.alive.remove(pos);
            self.remove_from_view(id);
            sched.on_completion(id, t_done);
            obs.on_job_complete(t_done, id, profit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::NullObserver;
    use crate::sched_api::{Allocation, TickView};
    use dagsched_core::{JobId, Time};
    use dagsched_dag::gen;
    use dagsched_workload::StepProfitFn;

    struct NopSched;
    impl OnlineScheduler for NopSched {
        fn name(&self) -> String {
            "nop".into()
        }
        fn on_arrival(&mut self, _job: &JobInfo, _now: Time) {}
        fn on_completion(&mut self, _id: JobId, _now: Time) {}
        fn on_expiry(&mut self, _id: JobId, _now: Time) {}
        fn allocate(&mut self, _view: &TickView<'_>) -> Allocation {
            Vec::new()
        }
    }

    #[test]
    fn terminal_transitions_recycle_live_slots() {
        let dag = gen::chain(3, 2).into_shared();
        let jobs: Vec<JobSpec> = (0..4u32)
            .map(|i| {
                JobSpec::new(
                    JobId(i),
                    Time(u64::from(i)),
                    dag.clone(),
                    StepProfitFn::deadline(Time(1), 10),
                )
            })
            .collect();
        let mut lc = Lifecycle::new(jobs.len());
        let mut sched = NopSched;
        let mut obs = NullObserver;
        let mut expired = Vec::new();

        // Admit the first two jobs: pool empty, both slots fresh.
        assert!(lc.admit_arrivals(&jobs, Time(1), 1, &mut sched, &mut obs));
        assert_eq!(lc.pool_len(), 0);

        // Complete job 0: its slot must land in the pool, not be dropped.
        lc.complete(&jobs, Time(1), &[JobId(0)], &mut sched, &mut obs);
        assert_eq!(lc.pool_len(), 1);

        // Job 2 arrives and must consume the pooled slot.
        assert!(lc.admit_arrivals(&jobs, Time(2), 1, &mut sched, &mut obs));
        assert_eq!(lc.pool_len(), 0);
        let l = lc.live[2].as_ref().expect("job 2 alive");
        assert_eq!(l.busy.len(), 3);
        assert!(l.busy.iter().all(|&b| !b));
        assert!(l.dirty.is_empty());
        assert_eq!(l.state.ready_count(), 1);
        assert_eq!(l.state.remaining_total(), dag.total_work());

        // Deadline 1 relative to arrival: by a late enough tick every alive
        // job (1 and 2) is hopeless; both slots return to the pool.
        lc.expire_hopeless(&jobs, Time(100), &mut sched, &mut obs, &mut expired);
        assert_eq!(expired.len(), 2);
        assert!(lc.alive().is_empty());
        assert_eq!(lc.pool_len(), 2);
    }

    #[test]
    fn maintained_view_compacts_in_arrival_order_and_records_deltas() {
        let dag = gen::chain(3, 2).into_shared();
        let jobs: Vec<JobSpec> = (0..4u32)
            .map(|i| {
                JobSpec::new(
                    JobId(i),
                    Time(0),
                    dag.clone(),
                    StepProfitFn::deadline(Time(1000), 10),
                )
            })
            .collect();
        let mut lc = Lifecycle::new(jobs.len());
        let mut sched = NopSched;
        let mut obs = NullObserver;

        // All four admit at once: the view lists them in arrival (id) order
        // with their initial ready counts, and the delta mirrors it.
        assert!(lc.admit_arrivals(&jobs, Time(0), 1, &mut sched, &mut obs));
        let expect: Vec<(JobId, u32)> = (0..4).map(|i| (JobId(i), 1)).collect();
        assert_eq!(lc.view(), &expect[..]);
        assert_eq!(lc.delta.admitted, expect);
        assert!(lc.delta.removed.is_empty() && lc.delta.ready_changed.is_empty());
        lc.delta.clear();

        // Remove the middle job: ordered compaction, not swap-remove — the
        // tail keeps arrival order, and the slot map follows it.
        lc.complete(&jobs, Time(1), &[JobId(1)], &mut sched, &mut obs);
        assert_eq!(
            lc.view(),
            &[(JobId(0), 1), (JobId(2), 1), (JobId(3), 1)],
            "compaction preserves arrival order"
        );
        assert_eq!(lc.delta.removed, vec![JobId(1)]);
        lc.delta.clear();

        // Patch a ready count in place: recorded once, and only on change.
        lc.patch_ready(JobId(2));
        assert!(
            lc.delta.ready_changed.is_empty(),
            "unchanged ready count must not be recorded"
        );

        // Removing the head compacts the remaining two, again in order.
        lc.complete(&jobs, Time(2), &[JobId(0)], &mut sched, &mut obs);
        assert_eq!(lc.view(), &[(JobId(2), 1), (JobId(3), 1)]);
        assert_eq!(lc.delta.removed, vec![JobId(0)]);
    }
}
