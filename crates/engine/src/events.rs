//! The discrete-event kernel: O(log n) next-event selection for the
//! fast-forward engine.
//!
//! The fast-forward path asks one question every step: *how far can the
//! clock jump before anything observable happens?* The retained reference
//! answer ([`HorizonScan`](crate::reference::HorizonScan)) rescans state —
//! O(claimed) for the nearest completion, O(alive) for the nearest zero-tail
//! expiry — even when nothing changed since the last step. An [`EventKernel`]
//! answers the same question in O(log n) by keeping every *event source*
//! armed in one lazy-deletion binary min-heap.
//!
//! # Source taxonomy
//!
//! | source                           | armed                              | re-keyed / disarmed                     |
//! |----------------------------------|------------------------------------|-----------------------------------------|
//! | completion frontier (job, node)  | when a claimed node's width changes| re-keyed only when the frontier moves   |
//! | arrival cursor (one global)      | at construction                    | re-armed after each admission batch     |
//! | expiry boundary (zero-tail job)  | at admission                       | disarmed when the job goes terminal     |
//! | horizon (one global)             | at construction                    | never                                   |
//!
//! A claimed node's **completion frontier** is `t + ceil(rem/units) - 1`,
//! where `units` is the per-tick rate of the *processor the node is bound
//! to* (uniform platforms have one rate; related-machines platforms one per
//! group — each group is its own event source, keyed by its own rate and
//! carrying its group index in the entry). It is the last tick of the
//! widest window in which the node cannot yet have finished. Arming the
//! frontier (not the completion tick itself) makes every source uniform —
//! the window width is simply `min(valid entry times) - t` — and gives the
//! kernel its key amortization: while a node stays claimed on the same
//! group across a bulk window its *absolute* frontier is constant (`rem`
//! drops by `s·units` exactly as `t` grows by `s`), so a
//! continuously-running node is pushed **once**, not once per step.
//!
//! # Lazy deletion and staleness
//!
//! Heap entries are never removed in place. Each source records its
//! currently-armed key (`armed_arrival`, `armed_expiry[job]`,
//! `Live::armed_done[node]`) and an entry is *valid* iff it matches; stale
//! entries are discarded when they surface at the top. Discarding is safe
//! because a discarded key is either gone for good or re-pushed before it
//! can matter:
//!
//! * the arrival cursor only advances, so a superseded arrival time never
//!   returns;
//! * an expiry is armed once at admission and disarmed at the job's
//!   terminal transition — never re-armed;
//! * on a **uniform** platform a node's frontier is non-decreasing over
//!   time: a node advances at most `units` per tick (one processor per node
//!   per tick), so `t + ceil(rem/units) - 1` can never move backwards to a
//!   superseded value, and epoch-stale entries (see below) are likewise
//!   gone for good — a node that was unclaimed for even one step advanced
//!   strictly less than `units` on at least one elapsed tick, so its next
//!   frontier is strictly larger than the discarded one. The driver
//!   therefore re-pushes only when the frontier value moves.
//! * on a **related-machines** platform monotonicity fails: a node
//!   re-claimed onto a *faster* group can reproduce a frontier time whose
//!   entry was already discarded as epoch-stale (rem 10, 1 unit/tick at
//!   `t` → frontier `t+9`; unclaimed, then re-claimed at `t+5` on a
//!   2-unit group → frontier `t+9` again). The driver compensates by
//!   re-pushing the entry whenever the node was **not claimed on the
//!   immediately-preceding step**, even at an unchanged frontier value —
//!   so every valid key always has at least one live entry. The price is
//!   an occasional *duplicate* of an identical key, which is harmless:
//!   validity is key-based, both copies match the same armed slot, and a
//!   minimum is unchanged by duplication.
//!
//! Completion entries carry no per-step validity of their own; instead the
//! driver stamps every node it claims with the current step's **epoch**
//! ([`EventKernel::begin_step`]) and an entry is valid only when its node's
//! stamp is current. For a node continuously claimed at an unmoved frontier
//! the entry is *not* re-pushed — the stamp check is what distinguishes
//! "claimed this step" from "claimed long ago" without touching the heap.
//!
//! # Tie-break contract
//!
//! Entries order by `(time, kind, group, job, node)` with kinds in
//! declaration order — completion < arrival < expiry < horizon at equal
//! time, and at equal time and kind the *group index* orders before the job
//! (per-group frontiers are distinct event sources; non-completion sources
//! carry group 0). The window width is a *minimum over valid entry times*,
//! so the tie order can never change a computed window; fixing it anyway
//! keeps the pop sequence (and therefore the kernel's internal traversal)
//! deterministic, which is what the differential suites pin down
//! byte-for-byte.
//!
//! # Memory bound
//!
//! Lazy deletion alone would let the heap grow with the total number of
//! re-keys. The kernel counts superseded keys (`stale_hint`) and, once they
//! could dominate the heap, compacts in place with `BinaryHeap::retain`,
//! keeping only entries whose key is still armed. Retention ignores epochs
//! (conservative: a kept-but-invalid entry is harmless), the backing
//! capacity is kept, and the bound becomes O(armed state) — which is what
//! keeps the engine's zero-allocation arrival-storm property intact.

use crate::lifecycle::Lifecycle;
use dagsched_core::{JobId, NodeId, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which next-event selection the engine uses for fast-forward windows and
/// expiry boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowMode {
    /// The [`EventKernel`]: O(log n) heap-based selection (default).
    #[default]
    EventKernel,
    /// The frozen O(alive + claimed) rescan
    /// ([`HorizonScan`](crate::reference::HorizonScan)), retained as the
    /// differential-testing twin.
    ReferenceScan,
}

/// Event-source kind. Declaration order *is* the tie-break order at equal
/// time: completion < arrival < expiry < horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SourceKind {
    /// A claimed node's completion frontier (`t + ceil(rem/units) - 1`).
    Completion,
    /// The next not-yet-admitted arrival.
    Arrival,
    /// A zero-tail job's expiry boundary (`last_useful_abs`).
    Expiry,
    /// The run's hard stop.
    Horizon,
}

/// One heap entry. Derived `Ord` is lexicographic over the field order,
/// which realizes the `(time, kind, group, job, node)` tie-break contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    time: Time,
    kind: SourceKind,
    /// Machine-group index for completion frontiers; 0 for every other
    /// source and on uniform platforms.
    group: u32,
    job: u32,
    node: u32,
}

/// Compaction fires only once at least this many keys were superseded —
/// below it the heap is too small for lazy corpses to matter.
const COMPACT_MIN_STALE: usize = 64;

/// The discrete-event heap shared by the driver's window computation and
/// the lifecycle's expiry index. See the [module docs](self).
pub struct EventKernel {
    /// Min-heap over [`EventKey`] (`Reverse`: `BinaryHeap` is a max-heap).
    heap: BinaryHeap<Reverse<EventKey>>,
    /// Armed expiry boundary per job; `Time::MAX` = not armed.
    armed_expiry: Vec<Time>,
    /// Armed arrival-cursor key; `None` = no pending arrival.
    armed_arrival: Option<Time>,
    /// Claim-phase epoch: completion entries are valid only for nodes whose
    /// [`Live::claim_epoch`](crate::lifecycle::Live) stamp matches.
    epoch: u64,
    /// Keys superseded since the last compaction (never decremented —
    /// naturally-popped corpses just make the next compaction earlier).
    stale_hint: usize,
    /// Scratch for re-pushing still-due completion entries in
    /// [`pop_due_expiries`](Self::pop_due_expiries).
    repush: Vec<EventKey>,
}

impl EventKernel {
    /// An empty kernel for an instance of `n` jobs. Nothing is armed; the
    /// driver arms the horizon and the first arrival iff the kernel is on.
    pub(crate) fn new(n: usize) -> EventKernel {
        EventKernel {
            heap: BinaryHeap::new(),
            armed_expiry: vec![Time::MAX; n],
            armed_arrival: None,
            epoch: 0,
            stale_hint: 0,
            repush: Vec::new(),
        }
    }

    /// Start a claim phase: bump and return the epoch that valid completion
    /// stamps must carry this step.
    #[inline]
    pub(crate) fn begin_step(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Arm the run's hard stop (once, at construction).
    pub(crate) fn arm_horizon(&mut self, at: Time) {
        self.heap.push(Reverse(EventKey {
            time: at,
            kind: SourceKind::Horizon,
            group: 0,
            job: 0,
            node: 0,
        }));
    }

    /// The currently-armed arrival time (the driver's idle-skip target).
    #[inline]
    pub(crate) fn armed_arrival(&self) -> Option<Time> {
        self.armed_arrival
    }

    /// (Re-)arm the arrival cursor at `at`.
    pub(crate) fn arm_arrival(&mut self, at: Time) {
        if self.armed_arrival == Some(at) {
            return;
        }
        if self.armed_arrival.is_some() {
            self.stale_hint += 1;
        }
        self.armed_arrival = Some(at);
        self.heap.push(Reverse(EventKey {
            time: at,
            kind: SourceKind::Arrival,
            group: 0,
            job: 0,
            node: 0,
        }));
    }

    /// Disarm the arrival cursor (every job has arrived).
    pub(crate) fn disarm_arrival(&mut self) {
        if self.armed_arrival.take().is_some() {
            self.stale_hint += 1;
        }
    }

    /// Arm `job`'s expiry boundary at `at` (admission of a zero-tail job).
    pub(crate) fn arm_expiry(&mut self, job: JobId, at: Time) {
        let slot = &mut self.armed_expiry[job.index()];
        if *slot != Time::MAX {
            self.stale_hint += 1;
        }
        *slot = at;
        self.heap.push(Reverse(EventKey {
            time: at,
            kind: SourceKind::Expiry,
            group: 0,
            job: job.0,
            node: 0,
        }));
    }

    /// Disarm `job`'s expiry boundary (terminal transition). No-op if it
    /// was never armed (tail-profit jobs).
    pub(crate) fn disarm_expiry(&mut self, job: JobId) {
        let slot = &mut self.armed_expiry[job.index()];
        if *slot != Time::MAX {
            *slot = Time::MAX;
            self.stale_hint += 1;
        }
    }

    /// Push a completion-frontier entry for `(job, node)` bound to machine
    /// group `group` (0 on uniform platforms). The driver has already
    /// written `frontier` into the node's `armed_done` slot; `rekey` says a
    /// previous frontier was superseded (its entry is now a lazy corpse).
    pub(crate) fn arm_completion(
        &mut self,
        job: JobId,
        node: NodeId,
        group: u32,
        frontier: Time,
        rekey: bool,
    ) {
        if rekey {
            self.stale_hint += 1;
        }
        self.heap.push(Reverse(EventKey {
            time: frontier,
            kind: SourceKind::Completion,
            group,
            job: job.0,
            node: node.0,
        }));
    }

    /// The fast-forward window width from `t`: `min(valid entry time) - t`,
    /// discarding stale entries as they surface. The horizon entry is
    /// always armed, so the minimum always exists.
    pub(crate) fn window(&mut self, t: Time, life: &Lifecycle) -> u64 {
        self.maybe_compact(life);
        loop {
            let Reverse(e) = *self.heap.peek().expect("the horizon is always armed");
            let valid = match e.kind {
                SourceKind::Horizon => true,
                SourceKind::Arrival => self.armed_arrival == Some(e.time),
                SourceKind::Expiry => self.armed_expiry[e.job as usize] == e.time,
                SourceKind::Completion => life.completion_armed(e.job, e.node, e.time, self.epoch),
            };
            if valid {
                debug_assert!(e.time >= t, "a valid entry is never in the past");
                return e.time.since(t);
            }
            self.heap.pop();
        }
    }

    /// Pop every entry with `time ≤ t`, collecting the *due* expiries into
    /// `out` in ascending job order (= arrival order: instance ids are
    /// assigned in arrival order). Due expiries are disarmed as they pop.
    ///
    /// Completion entries with `time == t` are re-pushed, not discarded:
    /// they may be the still-valid `s == 0` signal for a node that kept its
    /// frontier across the preceding window. Everything else at or below
    /// `t` is permanently stale (see the module docs) and is dropped.
    pub(crate) fn pop_due_expiries(&mut self, t: Time, life: &Lifecycle, out: &mut Vec<JobId>) {
        self.maybe_compact(life);
        while self.heap.peek().is_some_and(|&Reverse(top)| top.time <= t) {
            let Reverse(e) = self.heap.pop().expect("just peeked");
            match e.kind {
                SourceKind::Expiry => {
                    let slot = &mut self.armed_expiry[e.job as usize];
                    if *slot == e.time {
                        *slot = Time::MAX;
                        out.push(JobId(e.job));
                    }
                }
                SourceKind::Completion => {
                    if e.time == t {
                        self.repush.push(e);
                    }
                }
                SourceKind::Arrival => {
                    // Admissions ran before this pop, so a due *valid*
                    // arrival entry cannot exist — only superseded cursors.
                    debug_assert_ne!(self.armed_arrival, Some(e.time));
                }
                SourceKind::Horizon => {
                    unreachable!("the run guard keeps t strictly before the horizon")
                }
            }
        }
        for e in self.repush.drain(..) {
            self.heap.push(Reverse(e));
        }
        out.sort_unstable();
    }

    /// In-place compaction: once the superseded-key count could dominate,
    /// retain only entries whose key is still armed (epoch ignored —
    /// conservative). Keeps the backing capacity.
    fn maybe_compact(&mut self, life: &Lifecycle) {
        if self.stale_hint < COMPACT_MIN_STALE || self.stale_hint * 2 < self.heap.len() {
            return;
        }
        let armed_arrival = self.armed_arrival;
        let armed_expiry = &self.armed_expiry;
        self.heap.retain(|&Reverse(e)| match e.kind {
            SourceKind::Horizon => true,
            SourceKind::Arrival => armed_arrival == Some(e.time),
            SourceKind::Expiry => armed_expiry[e.job as usize] == e.time,
            SourceKind::Completion => life.completion_key_current(e.job, e.node, e.time),
        });
        self.stale_hint = 0;
    }

    /// Heap length (diagnostics / tests).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::NullObserver;
    use crate::sched_api::{Allocation, JobInfo, OnlineScheduler, TickView};
    use dagsched_dag::gen;
    use dagsched_workload::{JobSpec, StepProfitFn};

    struct NopSched;
    impl OnlineScheduler for NopSched {
        fn name(&self) -> String {
            "nop".into()
        }
        fn on_arrival(&mut self, _job: &JobInfo, _now: Time) {}
        fn on_completion(&mut self, _id: JobId, _now: Time) {}
        fn on_expiry(&mut self, _id: JobId, _now: Time) {}
        fn allocate(&mut self, _view: &TickView<'_>) -> Allocation {
            Vec::new()
        }
    }

    /// A lifecycle with `n` admitted single-node jobs (arrival 0, deadline
    /// 100), so completion-entry validity can be probed through the real
    /// `Live` slots.
    fn admitted_lifecycle(n: u32) -> (Vec<JobSpec>, Lifecycle) {
        let dag = gen::single(10).into_shared();
        let jobs: Vec<JobSpec> = (0..n)
            .map(|i| {
                JobSpec::new(
                    JobId(i),
                    Time(0),
                    dag.clone(),
                    StepProfitFn::deadline(Time(100), 1),
                )
            })
            .collect();
        let mut lc = Lifecycle::new(jobs.len());
        lc.admit_arrivals(&jobs, Time(0), 1, &mut NopSched, &mut NullObserver);
        (jobs, lc)
    }

    #[test]
    fn tie_break_orders_kinds_then_group_then_job_then_node() {
        let key = |kind, job, node| EventKey {
            time: Time(5),
            kind,
            group: 0,
            job,
            node,
        };
        let mut keys = vec![
            key(SourceKind::Horizon, 0, 0),
            key(SourceKind::Expiry, 1, 0),
            key(SourceKind::Arrival, 0, 0),
            key(SourceKind::Completion, 2, 1),
            key(SourceKind::Completion, 2, 0),
            key(SourceKind::Completion, 1, 9),
            key(SourceKind::Expiry, 0, 0),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                key(SourceKind::Completion, 1, 9),
                key(SourceKind::Completion, 2, 0),
                key(SourceKind::Completion, 2, 1),
                key(SourceKind::Arrival, 0, 0),
                key(SourceKind::Expiry, 0, 0),
                key(SourceKind::Expiry, 1, 0),
                key(SourceKind::Horizon, 0, 0),
            ]
        );
        // Time dominates the kind: an earlier horizon sorts before a later
        // completion.
        assert!(
            EventKey {
                time: Time(4),
                kind: SourceKind::Horizon,
                group: 0,
                job: 0,
                node: 0
            } < key(SourceKind::Completion, 0, 0)
        );
    }

    #[test]
    fn group_index_orders_before_job_at_equal_time_and_kind() {
        let key = |group, job| EventKey {
            time: Time(5),
            kind: SourceKind::Completion,
            group,
            job,
            node: 0,
        };
        // A higher-job entry in an earlier group sorts first: per-group
        // frontiers are distinct sources with their own sub-order.
        let mut keys = vec![key(1, 0), key(0, 7), key(1, 2), key(0, 3)];
        keys.sort();
        assert_eq!(keys, vec![key(0, 3), key(0, 7), key(1, 0), key(1, 2)]);
    }

    #[test]
    fn rearming_the_arrival_cursor_invalidates_the_old_entry() {
        let (_jobs, lc) = admitted_lifecycle(1);
        let mut k = EventKernel::new(1);
        k.arm_horizon(Time(100));
        k.arm_arrival(Time(5));
        k.arm_arrival(Time(9)); // supersedes 5
                                // From t = 3 the stale 5-entry surfaces first and must be skipped.
        assert_eq!(k.window(Time(3), &lc), 6);
        k.disarm_arrival();
        assert_eq!(k.window(Time(3), &lc), 97, "only the horizon remains");
    }

    #[test]
    fn disarmed_expiry_entries_are_skipped() {
        let (_jobs, lc) = admitted_lifecycle(2);
        let mut k = EventKernel::new(2);
        k.arm_horizon(Time(50));
        k.arm_expiry(JobId(0), Time(7));
        k.arm_expiry(JobId(1), Time(12));
        assert_eq!(k.window(Time(2), &lc), 5);
        k.disarm_expiry(JobId(0));
        assert_eq!(k.window(Time(2), &lc), 10);
        k.disarm_expiry(JobId(1));
        assert_eq!(k.window(Time(2), &lc), 48);
    }

    #[test]
    fn completion_entries_need_a_current_epoch_stamp() {
        let (_jobs, mut lc) = admitted_lifecycle(1);
        let mut k = EventKernel::new(1);
        k.arm_horizon(Time(100));
        let epoch = k.begin_step();
        {
            let l = lc.live[0].as_mut().expect("admitted");
            l.armed_done.resize(1, Time::MAX);
            l.claim_epoch.resize(1, 0);
            l.armed_done[0] = Time(4);
            l.claim_epoch[0] = epoch;
        }
        k.arm_completion(JobId(0), NodeId(0), 0, Time(4), false);
        assert_eq!(k.window(Time(2), &lc), 2, "stamped entry is valid");
        // A new step without re-claiming the node: the stamp is stale and
        // the entry no longer bounds the window.
        k.begin_step();
        assert_eq!(k.window(Time(2), &lc), 98);
    }

    #[test]
    fn rekeyed_completion_frontier_supersedes_the_old_entry() {
        let (_jobs, mut lc) = admitted_lifecycle(1);
        let mut k = EventKernel::new(1);
        k.arm_horizon(Time(100));
        let epoch = k.begin_step();
        {
            let l = lc.live[0].as_mut().expect("admitted");
            l.armed_done.resize(1, Time::MAX);
            l.claim_epoch.resize(1, 0);
            l.armed_done[0] = Time(4);
            l.claim_epoch[0] = epoch;
        }
        k.arm_completion(JobId(0), NodeId(0), 0, Time(4), false);
        // The frontier moves to 9 (as after a width change): old entry
        // stale even though its epoch stamp is current.
        lc.live[0].as_mut().expect("admitted").armed_done[0] = Time(9);
        k.arm_completion(JobId(0), NodeId(0), 0, Time(9), true);
        assert_eq!(k.window(Time(2), &lc), 7);
    }

    #[test]
    fn pop_due_collects_expiries_sorted_and_disarms_them() {
        let (_jobs, lc) = admitted_lifecycle(3);
        let mut k = EventKernel::new(3);
        k.arm_horizon(Time(100));
        // Armed out of id order, one of them not yet due.
        k.arm_expiry(JobId(2), Time(5));
        k.arm_expiry(JobId(0), Time(5));
        k.arm_expiry(JobId(1), Time(30));
        let mut due = Vec::new();
        k.pop_due_expiries(Time(5), &lc, &mut due);
        assert_eq!(
            due,
            vec![JobId(0), JobId(2)],
            "ascending id = arrival order"
        );
        due.clear();
        // Popping again at the same t: already disarmed, nothing due.
        k.pop_due_expiries(Time(5), &lc, &mut due);
        assert!(due.is_empty());
        due.clear();
        k.pop_due_expiries(Time(30), &lc, &mut due);
        assert_eq!(due, vec![JobId(1)]);
    }

    #[test]
    fn pop_due_repushes_still_due_completion_frontiers() {
        let (_jobs, mut lc) = admitted_lifecycle(1);
        let mut k = EventKernel::new(1);
        k.arm_horizon(Time(100));
        let epoch = k.begin_step();
        {
            let l = lc.live[0].as_mut().expect("admitted");
            l.armed_done.resize(1, Time::MAX);
            l.claim_epoch.resize(1, 0);
            l.armed_done[0] = Time(6);
            l.claim_epoch[0] = epoch;
        }
        k.arm_completion(JobId(0), NodeId(0), 0, Time(6), false);
        let mut due = Vec::new();
        // At t == 6 the frontier entry is the valid s == 0 signal: the pop
        // must put it back so `window` still sees it.
        k.pop_due_expiries(Time(6), &lc, &mut due);
        assert!(due.is_empty());
        assert_eq!(k.window(Time(6), &lc), 0);
        // One tick later the same entry is past and silently dropped.
        k.pop_due_expiries(Time(7), &lc, &mut due);
        assert!(due.is_empty());
        assert_eq!(k.window(Time(7), &lc), 93, "only the horizon remains");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Adversarial arm/disarm churn over the arrival cursor and the
        /// expiry boundaries: after every query the heap stays bounded by
        /// the live armed state plus the compaction slack, and no live key
        /// is ever dropped — the due-expiry pops and the window always
        /// agree with a naive mirror of the armed state.
        ///
        /// Arrival re-arms land far above every pop instant (the driver
        /// runs admissions before popping, so a *valid* due arrival entry
        /// cannot exist — the kernel debug-asserts exactly that).
        #[test]
        fn churn_keeps_the_heap_bounded_and_drops_no_live_key(
            ops in proptest::collection::vec((0u8..4, 0u32..16, 0u64..40), 1..300)
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            let (_jobs, lc) = admitted_lifecycle(16);
            let mut k = EventKernel::new(16);
            let horizon = Time(1_000_000);
            k.arm_horizon(horizon);
            let mut now = Time(0);
            // Mirror of the armed state: expiry per job, arrival cursor.
            let mut mirror = [Time::MAX; 16];
            let mut arrival: Option<Time> = None;
            let mut due = Vec::new();
            for &(sel, job, dt) in &ops {
                match sel {
                    0 => {
                        let at = Time(now.0 + dt);
                        k.arm_expiry(JobId(job), at);
                        mirror[job as usize] = at;
                    }
                    1 => {
                        k.disarm_expiry(JobId(job));
                        mirror[job as usize] = Time::MAX;
                    }
                    2 => {
                        let at = Time(500_000 + dt);
                        k.arm_arrival(at);
                        arrival = Some(at);
                    }
                    _ => {
                        now = Time(now.0 + dt);
                        due.clear();
                        k.pop_due_expiries(now, &lc, &mut due);
                        let expect: Vec<JobId> = (0..16u32)
                            .filter(|&j| mirror[j as usize] <= now)
                            .map(JobId)
                            .collect();
                        prop_assert_eq!(due.clone(), expect, "due set diverges at t={}", now.0);
                        for j in &due {
                            mirror[j.index()] = Time::MAX;
                        }
                        // Every armed expiry > now must still bound the
                        // window (no live key dropped by compaction).
                        let min_live = mirror
                            .iter()
                            .copied()
                            .chain(arrival)
                            .chain(std::iter::once(horizon))
                            .min()
                            .expect("horizon is always armed");
                        prop_assert_eq!(k.window(now, &lc), min_live.since(now));
                        // Heap bound: one live entry per armed key plus the
                        // corpses compaction is allowed to defer.
                        let live = mirror.iter().filter(|&&t| t != Time::MAX).count()
                            + usize::from(arrival.is_some())
                            + 1;
                        prop_assert!(
                            k.len() <= 2 * live + COMPACT_MIN_STALE + 2,
                            "heap holds {} entries for {} live keys",
                            k.len(),
                            live
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn compaction_bounds_the_heap_under_rekey_churn() {
        let (_jobs, lc) = admitted_lifecycle(1);
        let mut k = EventKernel::new(1);
        k.arm_horizon(Time(1_000_000));
        // Re-arm the arrival cursor far more often than the compaction
        // threshold, querying the kernel each round as the driver does
        // every step (compaction piggybacks on the queries): without it
        // the heap would hold one corpse per re-arm.
        let mut due = Vec::new();
        for i in 0..10_000u64 {
            k.arm_arrival(Time(100 + i));
            k.pop_due_expiries(Time(50), &lc, &mut due);
        }
        assert!(
            k.len() < 2 * COMPACT_MIN_STALE + 2,
            "heap holds {} entries despite 10k re-keys",
            k.len()
        );
        // The surviving armed entry still answers correctly.
        assert_eq!(k.window(Time(50), &lc), 10_049);
    }
}
