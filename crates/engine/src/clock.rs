//! The clock layer: simulated-time bookkeeping shared by both execution
//! paths.
//!
//! A [`Clock`] owns the three time-like quantities of a run — the current
//! tick, the hard horizon, and the two effort counters (`ticks_simulated`
//! counts covered simulated time, `steps_executed` counts engine scheduling
//! rounds) — and the ways they may legally advance:
//!
//! * [`skip_idle_to`](Clock::skip_idle_to) jumps over a gap in which nothing
//!   is alive and nothing arrives (no ticks are charged: the naive reference
//!   path never iterated those ticks either);
//! * [`advance_tick`](Clock::advance_tick) closes one reference tick
//!   (1 tick, 1 step);
//! * [`advance_window`](Clock::advance_window) closes one fast-forward bulk
//!   window of `s` ticks (`s` ticks, 1 step).
//!
//! Keeping the counters behind these three operations is what makes
//! `ticks_simulated` byte-identical between the naive and fast-forward paths:
//! there is no other way to move time.

use dagsched_core::Time;
use dagsched_workload::Instance;

/// Simulated-time state of one run. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Clock {
    now: Time,
    horizon: Time,
    ticks_simulated: u64,
    steps_executed: u64,
}

impl Clock {
    /// A clock starting at `start` with the given hard stop.
    pub(crate) fn new(start: Time, horizon: Time) -> Clock {
        Clock {
            now: start,
            horizon,
            ticks_simulated: 0,
            steps_executed: 0,
        }
    }

    /// The current tick.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The hard stop.
    #[inline]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Simulated ticks covered so far (idle gaps skipped, bulk windows
    /// counted at full width).
    #[inline]
    pub fn ticks_simulated(&self) -> u64 {
        self.ticks_simulated
    }

    /// Engine scheduling rounds executed so far.
    #[inline]
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Whether the run may still advance.
    #[inline]
    pub(crate) fn before_horizon(&self) -> bool {
        self.now < self.horizon
    }

    /// Jump over an idle gap (nothing alive, next arrival at `t`). Charges
    /// no ticks — the reference path never iterates idle gaps either. The
    /// driver reads the target from the arrival cursor on the scan path and
    /// from the [`EventKernel`](crate::events::EventKernel)'s armed arrival
    /// entry on the kernel path; both are the same time by construction.
    #[inline]
    pub(crate) fn skip_idle_to(&mut self, t: Time) {
        self.now = t;
    }

    /// Cap a window width so it does not cross the horizon.
    #[inline]
    pub(crate) fn cap_to_horizon(&self, s: u64) -> u64 {
        s.min(self.horizon.since(self.now))
    }

    /// Close one reference tick.
    #[inline]
    pub(crate) fn advance_tick(&mut self) {
        self.now = self.now.after(1);
        self.ticks_simulated += 1;
        self.steps_executed += 1;
    }

    /// Close one bulk fast-forward window of `s` ticks in a single step.
    #[inline]
    pub(crate) fn advance_window(&mut self, s: u64) {
        self.now = self.now.after(s);
        self.ticks_simulated += s;
        self.steps_executed += 1;
    }
}

/// A horizon every work-conserving schedule fits in: after the last useful
/// moment of any job, one processor could still drain all remaining work.
pub fn auto_horizon(inst: &Instance) -> Time {
    let stats = inst.stats();
    stats
        .horizon
        .saturating_add(stats.total_work.as_ticks())
        .saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_the_three_advance_operations() {
        let mut c = Clock::new(Time(5), Time(100));
        assert_eq!(c.now(), Time(5));
        assert!(c.before_horizon());
        c.skip_idle_to(Time(20));
        assert_eq!(c.now(), Time(20));
        assert_eq!(c.ticks_simulated(), 0, "idle skips charge nothing");
        c.advance_tick();
        assert_eq!((c.ticks_simulated(), c.steps_executed()), (1, 1));
        c.advance_window(10);
        assert_eq!((c.ticks_simulated(), c.steps_executed()), (11, 2));
        assert_eq!(c.now(), Time(31));
    }

    #[test]
    fn horizon_capping() {
        let mut c = Clock::new(Time(0), Time(10));
        c.skip_idle_to(Time(7));
        assert_eq!(c.cap_to_horizon(100), 3);
        assert_eq!(c.cap_to_horizon(2), 2);
        c.advance_window(3);
        assert!(!c.before_horizon());
    }
}
