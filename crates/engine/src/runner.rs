//! Parallel experiment execution.
//!
//! The *model* is simulated, but the *harness* is parallel: experiment sweeps
//! run hundreds of independent simulations (seeds × parameters × schedulers),
//! which parallelize perfectly. [`parallel_map`] is a deterministic ordered
//! parallel map built on `std::thread::scope` — results come back in input
//! order regardless of which worker ran what.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item on up to `threads` worker threads, returning
/// results in input order.
///
/// `threads = 0` (or 1, or a single-item input) degrades to a sequential
/// loop. Panics in `f` propagate (the scope joins all workers first).
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(n);
    if workers == 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let items_ref = &items;
    let f_ref = &f;
    let next_ref = &next;
    let slots_ref = &slots;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f_ref(&items_ref[i]);
                *slots_ref[i].lock().expect("slot lock poisoned") = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// Number of worker threads to use by default: the machine's parallelism,
/// capped so laptop runs stay responsive.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 8, |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallbacks() {
        assert_eq!(parallel_map(Vec::<u32>::new(), 8, |x| *x), vec![]);
        assert_eq!(parallel_map(vec![7], 8, |x| x + 1), vec![8]);
        assert_eq!(parallel_map(vec![1, 2, 3], 0, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn actually_runs_everything_once() {
        let count = AtomicU64::new(0);
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_map(items, 16, |x| {
            count.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn results_match_sequential_for_stateful_work() {
        // Each task runs a small deterministic computation; parallel and
        // sequential answers must coincide exactly.
        let items: Vec<u64> = (0..64).collect();
        let seq: Vec<u64> = items
            .iter()
            .map(|&s| dagsched_core::Rng64::seed_from(s).next_u64())
            .collect();
        let par = parallel_map(items, default_threads(), |&s| {
            dagsched_core::Rng64::seed_from(s).next_u64()
        });
        assert_eq!(seq, par);
    }
}
