//! Node-pick policies: which ready nodes run when a job is granted
//! processors.
//!
//! The paper's scheduler "arbitrarily picks `n_i` ready nodes" — the
//! analysis must hold for *any* choice, so the engine owns the choice and
//! makes it pluggable:
//!
//! * [`NodePick::Fifo`] / [`NodePick::Lifo`] — readiness order (the neutral
//!   defaults);
//! * [`NodePick::Random`] — seeded uniform choice;
//! * [`NodePick::AdversarialLowHeight`] — a *clairvoyant adversary* that
//!   runs nodes furthest from the critical path first. On the Figure 1 DAG
//!   this executes the whole parallel block before touching the chain,
//!   producing the `(W−L)/m + L` worst case of Theorem 1;
//! * [`NodePick::CriticalPathFirst`] — the clairvoyant *friendly* policy
//!   (longest-path-first list scheduling), used by the offline baselines.

use dagsched_core::{NodeId, Rng64};
use dagsched_dag::UnfoldState;

/// Strategy for choosing among ready nodes. See module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodePick {
    /// Oldest-ready-first (deterministic, structure-oblivious).
    Fifo,
    /// Newest-ready-first (deterministic, structure-oblivious).
    Lifo,
    /// Uniformly random among ready nodes, from the given seed.
    Random(u64),
    /// Clairvoyant adversary: smallest height (longest-path-to-sink) first,
    /// i.e. postpone the critical path as long as possible.
    AdversarialLowHeight,
    /// Clairvoyant ally: greatest height first (LPF list scheduling).
    CriticalPathFirst,
}

/// Per-simulation picker state (the RNG for [`NodePick::Random`]).
#[derive(Debug)]
pub struct Picker {
    policy: NodePick,
    rng: Rng64,
}

impl Picker {
    /// Instantiate the policy.
    pub fn new(policy: NodePick) -> Picker {
        let seed = match policy {
            NodePick::Random(s) => s,
            _ => 0,
        };
        Picker {
            policy,
            rng: Rng64::seed_from(seed),
        }
    }

    /// Choose up to `k` distinct ready nodes of `state`, excluding any in
    /// `busy` (nodes already claimed by another processor this tick).
    ///
    /// `busy` is a dense bool map indexed by node id.
    pub fn pick(&mut self, state: &UnfoldState, busy: &[bool], k: usize) -> Vec<NodeId> {
        if k == 0 {
            return Vec::new();
        }
        match self.policy {
            NodePick::Fifo => state
                .ready_iter()
                .filter(|n| !busy[n.index()])
                .take(k)
                .collect(),
            NodePick::Lifo => {
                let mut all: Vec<NodeId> =
                    state.ready_iter().filter(|n| !busy[n.index()]).collect();
                all.reverse();
                all.truncate(k);
                all
            }
            NodePick::Random(_) => {
                // Reservoir sample of size k over the eligible nodes, then
                // restore a deterministic order (by reservoir fill order).
                let mut reservoir: Vec<NodeId> = Vec::with_capacity(k);
                for (i, n) in state.ready_iter().filter(|n| !busy[n.index()]).enumerate() {
                    if i < k {
                        reservoir.push(n);
                    } else {
                        let j = self.rng.gen_range(i as u64 + 1) as usize;
                        if j < k {
                            reservoir[j] = n;
                        }
                    }
                }
                reservoir
            }
            NodePick::AdversarialLowHeight | NodePick::CriticalPathFirst => {
                let spec = state.spec().clone();
                let adversarial = self.policy == NodePick::AdversarialLowHeight;
                let mut all: Vec<NodeId> =
                    state.ready_iter().filter(|n| !busy[n.index()]).collect();
                // Stable tie-break on id keeps runs deterministic.
                all.sort_by_key(|n| {
                    let h = spec.height(*n).units();
                    let key = if adversarial { h } else { u64::MAX - h };
                    (key, n.0)
                });
                all.truncate(k);
                all
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Work;
    use dagsched_dag::{gen, DagBuilder};

    /// Fig.1-like: node 0..3 a chain, nodes 4..9 an independent block.
    fn fig1ish() -> UnfoldState {
        UnfoldState::new(gen::fig1(2, 4, 1).into_shared(), 1)
    }

    fn no_busy(state: &UnfoldState) -> Vec<bool> {
        vec![false; state.spec().num_nodes()]
    }

    #[test]
    fn fifo_takes_readiness_order() {
        let st = fig1ish();
        let busy = no_busy(&st);
        let picked = Picker::new(NodePick::Fifo).pick(&st, &busy, 3);
        // Initial ready set: chain head (0) then block nodes (4, 5, ...).
        assert_eq!(picked, vec![NodeId(0), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn lifo_takes_reverse_order() {
        let st = fig1ish();
        let busy = no_busy(&st);
        let picked = Picker::new(NodePick::Lifo).pick(&st, &busy, 2);
        assert_eq!(picked, vec![NodeId(7), NodeId(6)]);
    }

    #[test]
    fn adversary_avoids_the_chain() {
        let st = fig1ish();
        let busy = no_busy(&st);
        let picked = Picker::new(NodePick::AdversarialLowHeight).pick(&st, &busy, 4);
        // Chain head has height 4; block nodes height 1 — adversary takes
        // blocks first.
        assert!(!picked.contains(&NodeId(0)), "{picked:?}");
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn critical_path_first_takes_the_chain_head() {
        let st = fig1ish();
        let busy = no_busy(&st);
        let picked = Picker::new(NodePick::CriticalPathFirst).pick(&st, &busy, 1);
        assert_eq!(picked, vec![NodeId(0)]);
    }

    #[test]
    fn busy_nodes_are_excluded() {
        let st = fig1ish();
        let mut busy = no_busy(&st);
        busy[0] = true;
        busy[4] = true;
        let picked = Picker::new(NodePick::Fifo).pick(&st, &busy, 2);
        assert_eq!(picked, vec![NodeId(5), NodeId(6)]);
    }

    #[test]
    fn pick_caps_at_available() {
        let mut b = DagBuilder::new();
        b.add_node(Work(1));
        b.add_node(Work(1));
        let st = UnfoldState::new(b.build().unwrap().into_shared(), 1);
        let busy = vec![false; 2];
        let picked = Picker::new(NodePick::Fifo).pick(&st, &busy, 10);
        assert_eq!(picked.len(), 2);
        let picked = Picker::new(NodePick::Fifo).pick(&st, &busy, 0);
        assert!(picked.is_empty());
    }

    #[test]
    fn random_is_seed_deterministic_and_distinct() {
        let st = fig1ish();
        let busy = no_busy(&st);
        let a = Picker::new(NodePick::Random(9)).pick(&st, &busy, 3);
        let b = Picker::new(NodePick::Random(9)).pick(&st, &busy, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "picked nodes are distinct");
    }
}
