//! Node-pick policies: which ready nodes run when a job is granted
//! processors.
//!
//! The paper's scheduler "arbitrarily picks `n_i` ready nodes" — the
//! analysis must hold for *any* choice, so the engine owns the choice and
//! makes it pluggable:
//!
//! * [`NodePick::Fifo`] / [`NodePick::Lifo`] — readiness order (the neutral
//!   defaults);
//! * [`NodePick::Random`] — seeded uniform choice;
//! * [`NodePick::AdversarialLowHeight`] — a *clairvoyant adversary* that
//!   runs nodes furthest from the critical path first. On the Figure 1 DAG
//!   this executes the whole parallel block before touching the chain,
//!   producing the `(W−L)/m + L` worst case of Theorem 1;
//! * [`NodePick::CriticalPathFirst`] — the clairvoyant *friendly* policy
//!   (longest-path-first list scheduling), used by the offline baselines.

use dagsched_core::{NodeId, Rng64};
use dagsched_dag::{DagJobSpec, UnfoldState};
use std::collections::HashMap;
use std::sync::Arc;

/// Strategy for choosing among ready nodes. See module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodePick {
    /// Oldest-ready-first (deterministic, structure-oblivious).
    Fifo,
    /// Newest-ready-first (deterministic, structure-oblivious).
    Lifo,
    /// Uniformly random among ready nodes, from the given seed.
    Random(u64),
    /// Clairvoyant adversary: smallest height (longest-path-to-sink) first,
    /// i.e. postpone the critical path as long as possible.
    AdversarialLowHeight,
    /// Clairvoyant ally: greatest height first (LPF list scheduling).
    CriticalPathFirst,
}

impl NodePick {
    /// Whether repeated picks over an unchanged ready/busy state return the
    /// same nodes without consuming per-call state — the property the
    /// engine's event-driven fast-forward path relies on.
    ///
    /// [`NodePick::Random`] fails it: the naive path draws from the RNG on
    /// every tick, so skipping ticks would change every subsequent draw.
    /// Random runs stay on the naive reference path.
    pub fn fast_forward_safe(&self) -> bool {
        !matches!(self, NodePick::Random(_))
    }
}

/// Per-simulation picker state: the RNG for [`NodePick::Random`] and, for
/// the clairvoyant policies, one cached height ordering per DAG spec.
#[derive(Debug)]
pub struct Picker {
    policy: NodePick,
    rng: Rng64,
    /// Height rank per node, computed once per spec for the clairvoyant
    /// policies (instead of re-sorting the ready set on every pick). Keyed
    /// by the spec's `Arc` pointer; the held `Arc` keeps the allocation
    /// alive so the key can never be reused while cached.
    ranks: HashMap<usize, (Arc<DagJobSpec>, Vec<u32>)>,
}

impl Picker {
    /// Instantiate the policy.
    pub fn new(policy: NodePick) -> Picker {
        let seed = match policy {
            NodePick::Random(s) => s,
            _ => 0,
        };
        Picker {
            policy,
            rng: Rng64::seed_from(seed),
            ranks: HashMap::new(),
        }
    }

    /// Choose up to `k` distinct ready nodes of `state`, excluding any in
    /// `busy` (nodes already claimed by another processor this tick).
    ///
    /// `busy` is a dense bool map indexed by node id.
    pub fn pick(&mut self, state: &UnfoldState, busy: &[bool], k: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.pick_into(state, busy, k, &mut out);
        out
    }

    /// Like [`pick`](Self::pick), but writes into a caller-provided buffer
    /// (cleared first) so the engine's hot loop allocates nothing per call.
    pub fn pick_into(
        &mut self,
        state: &UnfoldState,
        busy: &[bool],
        k: usize,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        match self.policy {
            NodePick::Fifo => {
                // One pass, stops after k: no full ready-set scan.
                out.extend(state.ready_iter().filter(|n| !busy[n.index()]).take(k));
            }
            NodePick::Lifo => {
                out.extend(state.ready_iter().filter(|n| !busy[n.index()]));
                out.reverse();
                out.truncate(k);
            }
            NodePick::Random(_) => {
                // Reservoir sample of size k over the eligible nodes, then
                // restore a deterministic order (by reservoir fill order).
                for (i, n) in state.ready_iter().filter(|n| !busy[n.index()]).enumerate() {
                    if i < k {
                        out.push(n);
                    } else {
                        let j = self.rng.gen_range(i as u64 + 1) as usize;
                        if j < k {
                            out[j] = n;
                        }
                    }
                }
            }
            NodePick::AdversarialLowHeight | NodePick::CriticalPathFirst => {
                let rank = self.rank_for(state.spec());
                out.extend(state.ready_iter().filter(|n| !busy[n.index()]));
                // The precomputed rank is a total order consistent with the
                // policy's (height, id) key, so "k smallest ranks, in rank
                // order" reproduces the old sort-and-truncate exactly —
                // in O(ready + k log k) instead of O(ready log ready).
                if out.len() > k {
                    out.select_nth_unstable_by_key(k - 1, |n| rank[n.index()]);
                    out.truncate(k);
                }
                out.sort_unstable_by_key(|n| rank[n.index()]);
            }
        }
    }

    /// Height ranks for `spec`, computed on first use and cached. Rank i
    /// means i-th in the policy order: ascending height for the adversary,
    /// descending for critical-path-first, ids breaking ties.
    fn rank_for(&mut self, spec: &Arc<DagJobSpec>) -> &[u32] {
        let adversarial = self.policy == NodePick::AdversarialLowHeight;
        let key = Arc::as_ptr(spec) as usize;
        let (_, rank) = self.ranks.entry(key).or_insert_with(|| {
            let n = spec.num_nodes();
            let mut order: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
            order.sort_unstable_by_key(|n| {
                let h = spec.height(*n).units();
                let key = if adversarial { h } else { u64::MAX - h };
                (key, n.0)
            });
            let mut rank = vec![0u32; n];
            for (i, node) in order.iter().enumerate() {
                rank[node.index()] = i as u32;
            }
            (spec.clone(), rank)
        });
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Work;
    use dagsched_dag::{gen, DagBuilder};

    /// Fig.1-like: node 0..3 a chain, nodes 4..9 an independent block.
    fn fig1ish() -> UnfoldState {
        UnfoldState::new(gen::fig1(2, 4, 1).into_shared(), 1)
    }

    fn no_busy(state: &UnfoldState) -> Vec<bool> {
        vec![false; state.spec().num_nodes()]
    }

    #[test]
    fn fifo_takes_readiness_order() {
        let st = fig1ish();
        let busy = no_busy(&st);
        let picked = Picker::new(NodePick::Fifo).pick(&st, &busy, 3);
        // Initial ready set: chain head (0) then block nodes (4, 5, ...).
        assert_eq!(picked, vec![NodeId(0), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn lifo_takes_reverse_order() {
        let st = fig1ish();
        let busy = no_busy(&st);
        let picked = Picker::new(NodePick::Lifo).pick(&st, &busy, 2);
        assert_eq!(picked, vec![NodeId(7), NodeId(6)]);
    }

    #[test]
    fn adversary_avoids_the_chain() {
        let st = fig1ish();
        let busy = no_busy(&st);
        let picked = Picker::new(NodePick::AdversarialLowHeight).pick(&st, &busy, 4);
        // Chain head has height 4; block nodes height 1 — adversary takes
        // blocks first.
        assert!(!picked.contains(&NodeId(0)), "{picked:?}");
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn critical_path_first_takes_the_chain_head() {
        let st = fig1ish();
        let busy = no_busy(&st);
        let picked = Picker::new(NodePick::CriticalPathFirst).pick(&st, &busy, 1);
        assert_eq!(picked, vec![NodeId(0)]);
    }

    #[test]
    fn busy_nodes_are_excluded() {
        let st = fig1ish();
        let mut busy = no_busy(&st);
        busy[0] = true;
        busy[4] = true;
        let picked = Picker::new(NodePick::Fifo).pick(&st, &busy, 2);
        assert_eq!(picked, vec![NodeId(5), NodeId(6)]);
    }

    #[test]
    fn pick_caps_at_available() {
        let mut b = DagBuilder::new();
        b.add_node(Work(1));
        b.add_node(Work(1));
        let st = UnfoldState::new(b.build().unwrap().into_shared(), 1);
        let busy = vec![false; 2];
        let picked = Picker::new(NodePick::Fifo).pick(&st, &busy, 10);
        assert_eq!(picked.len(), 2);
        let picked = Picker::new(NodePick::Fifo).pick(&st, &busy, 0);
        assert!(picked.is_empty());
    }

    #[test]
    fn random_is_seed_deterministic_and_distinct() {
        let st = fig1ish();
        let busy = no_busy(&st);
        let a = Picker::new(NodePick::Random(9)).pick(&st, &busy, 3);
        let b = Picker::new(NodePick::Random(9)).pick(&st, &busy, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "picked nodes are distinct");
    }
}
