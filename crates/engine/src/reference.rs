//! Frozen reference implementations kept as differential-testing twins.
//!
//! [`HorizonScan`] is the pre-kernel next-event selection: an O(claimed)
//! fold for the nearest completion plus an O(alive) rescan for the nearest
//! zero-tail expiry boundary, every step. It is bit-for-bit the window and
//! expiry logic the engine shipped with through PR 5, now selectable via
//! [`WindowMode::ReferenceScan`](crate::events::WindowMode) so the
//! `event_kernel_differential` suite (and the `event-kernel` bench group)
//! can hold the [`EventKernel`](crate::events::EventKernel) byte-identical
//! to it on every corpus instance.
//!
//! [`ViewRebuild`] is the pre-delta scheduler handoff: rebuild the whole
//! `(id, ready_count)` view from the alive list every step and hand it to
//! a full `allocate_into`. It is verbatim the `Lifecycle::build_view` the
//! engine shipped with through PR 7, now selectable via
//! [`HandoffMode::Rebuild`](crate::sim::HandoffMode) so the
//! `view_delta_differential` suite (and the `view_delta` bench group) can
//! hold the maintained view and the incremental `allocate_delta` path
//! byte-identical to it.
//!
//! Nothing here is deprecated: the scan and the rebuild are the
//! *specification* the kernel and the delta path are tested against,
//! exactly as `dagsched_dag::reference` specifies the CSR arena and
//! `dagsched_sched::bands::reference` the admission treap.

use crate::clock::Clock;
use crate::lifecycle::Lifecycle;
use crate::observe::SimObserver;
use crate::sched_api::OnlineScheduler;
use dagsched_core::{JobId, Time};
use dagsched_workload::JobSpec;

/// The scan-based next-event twin. Stateless: both operations read the
/// lifecycle afresh each step, which is exactly the cost the kernel
/// amortizes away.
pub struct HorizonScan;

impl HorizonScan {
    /// The fast-forward window width from `t`, by rescanning: within
    /// `min_q - 1` ticks no claimed node finishes (`min_q` is the caller's
    /// fold over claimed nodes of `ceil(remaining/units)`), capped by the
    /// next arrival, the nearest zero-tail expiry boundary over *all* alive
    /// jobs, and the horizon.
    pub(crate) fn window(
        min_q: u64,
        jobs: &[JobSpec],
        life: &Lifecycle,
        clock: &Clock,
        t: Time,
    ) -> u64 {
        let mut s = min_q.saturating_sub(1);
        if life.pending_arrivals() {
            s = s.min(jobs[life.next_arrival].arrival.since(t));
        }
        for &id in &life.alive {
            let job = &jobs[id.index()];
            if job.profit.tail_value() == 0 {
                s = s.min(job.last_useful_abs().since(t));
            }
        }
        clock.cap_to_horizon(s)
    }

    /// The O(alive) expiry rescan:
    /// [`Lifecycle::expire_hopeless`](crate::lifecycle::Lifecycle), kept
    /// behind the same dispatch point as the kernel's indexed variant.
    pub(crate) fn expire<O: SimObserver + ?Sized>(
        life: &mut Lifecycle,
        jobs: &[JobSpec],
        t: Time,
        sched: &mut dyn OnlineScheduler,
        obs: &mut O,
        expired: &mut Vec<JobId>,
    ) -> bool {
        life.expire_hopeless(jobs, t, sched, obs, expired)
    }
}

/// The full-rebuild scheduler-handoff twin: reconstruct the whole
/// `(id, ready_count)` view from the alive list, every step. Stateless —
/// exactly the O(alive) cost the maintained view
/// ([`Lifecycle::view`]) amortizes away.
pub struct ViewRebuild;

impl ViewRebuild {
    /// Rebuild the scheduler's tick view into `out`: `(id, ready_count)`
    /// per alive job, in arrival order. Verbatim the pre-PR 8
    /// `Lifecycle::build_view`; public so the engine's own test suites can
    /// pin the maintained view against it.
    pub fn build(life: &Lifecycle, out: &mut Vec<(JobId, u32)>) {
        out.clear();
        for &id in life.alive() {
            let l = life.live[id.index()].as_ref().expect("alive implies live");
            out.push((id, l.state.ready_count() as u32));
        }
    }
}
