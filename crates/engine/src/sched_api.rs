//! The semi-non-clairvoyant scheduler interface.
//!
//! This trait is the enforcement point of the paper's information model:
//! everything a scheduler can learn about a job flows through [`JobInfo`]
//! (arrival-time knowledge: `W`, `L`, the profit function) and
//! [`TickView`] (per-tick knowledge: which started jobs are alive and how
//! many ready nodes each has). The DAG structure itself is never exposed.

use crate::observe::AdmissionEvent;
use dagsched_core::{JobId, MachineGroups, Time, Work};
use dagsched_workload::StepProfitFn;

/// What a semi-non-clairvoyant scheduler learns when a job arrives.
#[derive(Debug, Clone)]
pub struct JobInfo {
    /// The job's id (index into the instance).
    pub id: JobId,
    /// Release time `r_i`.
    pub arrival: Time,
    /// Total work `W_i`.
    pub work: Work,
    /// Critical-path length `L_i`.
    pub span: Work,
    /// The profit function `p_i(·)` over relative completion time.
    pub profit: StepProfitFn,
}

impl JobInfo {
    /// Relative deadline for throughput (single-step) jobs.
    pub fn rel_deadline(&self) -> Option<Time> {
        self.profit.as_deadline().map(|(d, _)| d)
    }

    /// Absolute deadline for throughput jobs.
    pub fn abs_deadline(&self) -> Option<Time> {
        self.rel_deadline()
            .map(|d| self.arrival.saturating_add(d.ticks()))
    }
}

/// Per-tick view of the system state offered to [`OnlineScheduler::allocate`].
///
/// `jobs` holds `(id, ready_count)` for every job that has arrived, is not
/// finished, and has not expired — in arrival order.
#[derive(Debug)]
pub struct TickView<'a> {
    /// Machine size.
    pub m: u32,
    /// Current tick.
    pub now: Time,
    jobs: &'a [(JobId, u32)],
    groups: Option<&'a MachineGroups>,
}

impl<'a> TickView<'a> {
    /// Construct a view (used by the engine and by scheduler unit tests).
    pub fn new(m: u32, now: Time, jobs: &'a [(JobId, u32)]) -> TickView<'a> {
        TickView {
            m,
            now,
            jobs,
            groups: None,
        }
    }

    /// Attach the platform's machine-group description (engine-built views
    /// always carry it; hand-built test views may omit it).
    pub fn with_groups(mut self, groups: &'a MachineGroups) -> TickView<'a> {
        self.groups = Some(groups);
        self
    }

    /// The platform's machine groups, if attached. Aggregate-blind
    /// schedulers never need this — `m` is the total over all groups.
    pub fn groups(&self) -> Option<&'a MachineGroups> {
        self.groups
    }

    /// Alive jobs as `(id, ready_node_count)`, in arrival order.
    pub fn jobs(&self) -> &[(JobId, u32)] {
        self.jobs
    }

    /// Ready-node count of one job (`None` if it is not alive).
    ///
    /// O(log n) by binary search: engine-built views list jobs in arrival
    /// order, and [`Instance::new`](dagsched_workload::Instance::new)
    /// guarantees ids are assigned in arrival order, so `jobs` is ascending
    /// by id. Hand-built test views must keep ids sorted for this lookup
    /// (views with unsorted ids may still be *iterated* via
    /// [`jobs`](Self::jobs)).
    pub fn ready_count(&self, id: JobId) -> Option<u32> {
        self.jobs
            .binary_search_by_key(&id, |&(j, _)| j)
            .ok()
            .map(|i| self.jobs[i].1)
    }
}

/// A processor assignment for one tick: `(job, processor count)` pairs.
///
/// The engine validates that the job is alive, every count is ≥ 1 and the
/// total does not exceed `m`. Assigning more processors than a job has
/// ready nodes is legal — the surplus idles (exactly the paper's model,
/// where S always hands a job its full allotment `n_i`).
pub type Allocation = Vec<(JobId, u32)>;

/// What changed in the [`TickView`] since the scheduler last allocated.
///
/// The engine's lifecycle maintains the view persistently and accumulates
/// every mutation here: admissions append, terminal transitions remove,
/// node completions patch a job's ready count in place. The delta is
/// handed to [`OnlineScheduler::allocate_delta`] together with the full
/// (already-patched) view, then cleared — so **an empty delta means no
/// scheduler hook fired and no ready count moved since the previous
/// `allocate` call**, which for a scheduler honoring
/// [`allocation_stable_between_events`](OnlineScheduler::allocation_stable_between_events)
/// makes replaying the previous allocation byte-identical to recomputing
/// it.
///
/// One job id appears in at most one of the three lists per delta, with a
/// single exception: a job can be admitted and then expire (or a job can
/// have its ready count patched and then complete) before the next
/// allocate, in which case it appears in `removed` *as well*. Applying the
/// lists in the order `admitted` → `ready_changed` → `removed` therefore
/// always yields the correct net effect.
#[derive(Debug, Clone, Default)]
pub struct ViewDelta {
    /// Jobs that entered the view: `(id, initial ready count)`, in
    /// admission (= arrival = ascending id) order.
    pub admitted: Vec<(JobId, u32)>,
    /// Jobs that left the view (completed or expired), ascending per batch.
    pub removed: Vec<JobId>,
    /// Jobs whose ready count changed in place: `(id, new ready count)`.
    pub ready_changed: Vec<(JobId, u32)>,
}

impl ViewDelta {
    /// True iff nothing changed since the last allocate.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.admitted.is_empty() && self.removed.is_empty() && self.ready_changed.is_empty()
    }

    /// Forget every recorded change, keeping capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.admitted.clear();
        self.removed.clear();
        self.ready_changed.clear();
    }
}

/// An online scheduler driving the engine.
///
/// The engine calls the three event hooks as the simulation unfolds and
/// [`allocate`](OnlineScheduler::allocate) once per tick. Implementations
/// must be deterministic given their construction parameters — all
/// experiment reproducibility rests on that.
pub trait OnlineScheduler {
    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// A new job arrived (called before `allocate` of the same tick).
    fn on_arrival(&mut self, job: &JobInfo, now: Time);

    /// A job completed during the previous tick (called before `allocate`).
    fn on_completion(&mut self, id: JobId, now: Time);

    /// A deadline job can no longer earn above its tail and was abandoned.
    fn on_expiry(&mut self, id: JobId, now: Time);

    /// Decide this tick's processor assignment.
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation;

    /// Buffer-reusing variant of [`allocate`](Self::allocate): write this
    /// tick's assignment into `out` instead of returning a fresh vector.
    ///
    /// The engine hoists one `Allocation` buffer across the whole run and
    /// calls this method, so schedulers that override it (and otherwise
    /// keep allocation off their event path) decide each tick without
    /// touching the allocator. Implementations must leave `out` holding
    /// exactly what `allocate` would have returned — the default clears
    /// `out` and delegates, so overriders must also start from
    /// `out.clear()` and must not read stale contents.
    fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        out.clear();
        let alloc = self.allocate(view);
        out.extend_from_slice(&alloc);
    }

    /// Incremental variant of [`allocate_into`](Self::allocate_into):
    /// patch the previous allocation from a [`ViewDelta`] instead of
    /// re-deriving it from the full view. Return `true` after writing the
    /// allocation into `out`; return `false` (the default) to decline, in
    /// which case the engine falls back to a full `allocate_into` on the
    /// same view.
    ///
    /// The engine's contract with implementations:
    ///
    /// * `out` still holds **exactly what the previous `allocate_delta` /
    ///   `allocate_into` call left in it** — the engine hoists one buffer
    ///   per run and never writes to it between scheduler calls. On an
    ///   empty `delta` an implementation may therefore return `true`
    ///   without touching `out` at all (the cached-replay fast path).
    /// * `delta` records every view change since that previous call (see
    ///   [`ViewDelta`]); `view` is the full, already-patched view, so an
    ///   implementation may consult either.
    /// * Within one engine run the handoff mode is pinned: the engine
    ///   either calls this method every step (falling back per-step when it
    ///   returns `false`) or never calls it at all.
    ///
    /// Correctness bar: after returning `true`, `out` must be byte-identical
    /// to what `allocate_into(view, out)` would have produced. Only
    /// schedulers honoring
    /// [`allocation_stable_between_events`](Self::allocation_stable_between_events)
    /// can promise this for the empty-delta replay (a `now`-dependent
    /// scheduler would re-decide differently); unstable schedulers keep the
    /// default `false`.
    fn allocate_delta(
        &mut self,
        delta: &ViewDelta,
        view: &TickView<'_>,
        out: &mut Allocation,
    ) -> bool {
        let _ = (delta, view, out);
        false
    }

    /// Declare that this scheduler's allocation is *stable between events*,
    /// unlocking the engine's event-driven fast-forward path.
    ///
    /// Returning `true` is a contract: between two consecutive *events* —
    /// an arrival, a completion, an expiry, or any change to a job's ready
    /// count — repeated [`allocate`](Self::allocate) calls on views that
    /// differ only in [`TickView::now`] must
    ///
    /// 1. return the same [`Allocation`] (same pairs, same order),
    /// 2. be free of observable side effects (no per-call internal state
    ///    such as RNG draws, counters, or time-keyed queues), and
    /// 3. not depend on `view.now` other than through the event hooks.
    ///
    /// When this holds, the engine may call `allocate` once per event
    /// instead of once per tick and bulk-advance the claimed nodes across
    /// the whole inter-event window — identical results, O(events) instead
    /// of O(ticks). Schedulers that cannot promise this (e.g. randomized
    /// per-tick orders, or profit-curve trackers keyed on absolute time)
    /// keep the default `false` and run on the naive reference path.
    fn allocation_stable_between_events(&self) -> bool {
        false
    }

    /// Declare that this scheduler's *completion keys* are stable between
    /// events, unlocking the engine's heap-based window computation
    /// ([`EventKernel`](crate::events::EventKernel)).
    ///
    /// Returning `true` strengthens
    /// [`allocation_stable_between_events`](Self::allocation_stable_between_events):
    /// the kernel re-keys a claimed node's completion entry only when the
    /// node's allocation width (and with it its completion frontier)
    /// actually changes, rather than re-deriving every claimed node's
    /// distance each step. That is sound exactly when the inter-event
    /// allocation is stable, so the default forwards to
    /// `allocation_stable_between_events` and virtually no implementation
    /// needs to override it. Override only to return `false` while staying
    /// allocation-stable — a scheduler that wants scan-based windows (the
    /// [`HorizonScan`](crate::reference::HorizonScan) twin) without giving
    /// up the fast-forward path itself.
    fn completion_keys_stable(&self) -> bool {
        self.allocation_stable_between_events()
    }

    /// Declare *bounded* stability: the allocation is stable between events
    /// **and** plan boundaries, with the boundaries reported per tick via
    /// [`stable_until`](Self::stable_until).
    ///
    /// This is the weaker sibling of
    /// [`allocation_stable_between_events`](Self::allocation_stable_between_events)
    /// for schedulers whose plan is *piecewise*-constant in `view.now` — a
    /// slot plan, a quantum rotation — rather than constant outright.
    /// Returning `true` is a contract: for every tick `t`, with no event
    /// hook firing in between, repeated `allocate` calls on views with
    /// `now ∈ [t, stable_until(t))` must satisfy the same three points as
    /// full stability (same allocation, no observable side effects, no
    /// other `now` dependence). The engine then fast-forwards in windows
    /// capped by `stable_until` instead of single ticks.
    ///
    /// Full stability subsumes this: schedulers returning `true` from
    /// `allocation_stable_between_events` are never asked. The default
    /// `false` keeps `now`-dependent schedulers on the per-tick path.
    fn bounded_stability(&self) -> bool {
        false
    }

    /// The end of the current stability window: the allocation decided at
    /// `now` stays valid (absent events) for every tick in
    /// `[now, stable_until(now))`.
    ///
    /// Only consulted when [`bounded_stability`](Self::bounded_stability)
    /// returns `true`, once per engine step after the allocation. `None`
    /// means *no further plan boundary* — stable until the next event, like
    /// a fully stable scheduler. `Some(t)` with `t <= now` is treated as a
    /// single-tick window. The default `None` pairs with the default
    /// `bounded_stability` of `false` and is never reached.
    fn stable_until(&self, now: Time) -> Option<Time> {
        let _ = now;
        None
    }

    /// Ask the scheduler to start recording admission decisions for
    /// [`drain_admission_events`](Self::drain_admission_events). The engine
    /// calls this once at simulation start when an active
    /// [`SimObserver`](crate::observe::SimObserver) is attached; schedulers
    /// without admission control can ignore it (the default is a no-op, and
    /// no recording means no buffering cost on unobserved runs).
    fn enable_admission_reporting(&mut self) {}

    /// Append the admission decisions recorded since the last drain to
    /// `out`, in the order they were made. The engine drains after each
    /// batch of arrival, completion, and expiry hooks and forwards every
    /// event to the attached observer — on both execution paths, so the
    /// decisions land at identical stream positions. Default: none.
    fn drain_admission_events(&mut self, _out: &mut Vec<AdmissionEvent>) {}

    /// Declare that this scheduler understands heterogeneous platforms.
    ///
    /// Returning `true` asks the engine for **fastest-first placement**: on
    /// a platform with several machine groups, allocation entries consume
    /// processors in descending-speed order (ties broken by ascending group
    /// index), so the nodes a scheduler ranks highest land on the fastest
    /// processors. The default `false` keeps declaration-order placement —
    /// the scheduler transparently sees the aggregate `m` and need not know
    /// groups exist. On a uniform platform the two orders coincide, so this
    /// flag never changes uniform-run results. The engine samples the flag
    /// once at construction; it must be constant for the scheduler's
    /// lifetime.
    fn group_aware(&self) -> bool {
        false
    }

    /// Return this scheduler to its freshly-constructed state, keeping any
    /// allocated capacity, and report whether that was done.
    ///
    /// Returning `true` is a contract: after `reset()`, every subsequent
    /// run must be byte-identical to one on a newly constructed scheduler
    /// with the same parameters. Sweep runners use this to reuse one
    /// scheduler value (and its buffers) across many cells instead of
    /// rebuilding it per run. The default returns `false` — "I did not
    /// reset, build a fresh one" — so implementations that carry hidden
    /// cross-run state are never reused by accident.
    fn reset(&mut self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_info_deadline_accessors() {
        let info = JobInfo {
            id: JobId(2),
            arrival: Time(7),
            work: Work(30),
            span: Work(5),
            profit: StepProfitFn::deadline(Time(13), 4),
        };
        assert_eq!(info.rel_deadline(), Some(Time(13)));
        assert_eq!(info.abs_deadline(), Some(Time(20)));
    }

    #[test]
    fn tick_view_lookup() {
        let jobs = vec![(JobId(0), 3u32), (JobId(2), 0)];
        let view = TickView::new(4, Time(9), &jobs);
        assert_eq!(view.ready_count(JobId(0)), Some(3));
        assert_eq!(view.ready_count(JobId(2)), Some(0));
        assert_eq!(view.ready_count(JobId(1)), None);
        assert_eq!(view.jobs().len(), 2);
        assert_eq!(view.m, 4);
        assert_eq!(view.now, Time(9));
    }

    #[test]
    fn ready_count_binary_search_agrees_with_linear_scan() {
        // A sparse ascending view, as the engine builds them: present and
        // absent ids interleaved, including both ends.
        let jobs: Vec<(JobId, u32)> = (0..200u32)
            .filter(|i| i % 3 != 1)
            .map(|i| (JobId(i), i * 7))
            .collect();
        let view = TickView::new(8, Time(0), &jobs);
        for probe in 0..210u32 {
            let id = JobId(probe);
            let linear = jobs.iter().find(|(j, _)| *j == id).map(|(_, r)| *r);
            assert_eq!(view.ready_count(id), linear, "probe {probe}");
        }
    }
}
