//! Simulation outcomes and accounting.

use crate::trace::Trace;
use dagsched_core::Time;

/// Terminal (or non-terminal, at horizon) state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Finished all nodes at the given absolute time, earning `profit`.
    Completed {
        /// Completion time.
        at: Time,
        /// Profit paid, `p(at − arrival)`.
        profit: u64,
    },
    /// Abandoned: from `at` on, completing could earn only the zero tail.
    Expired {
        /// The tick the engine abandoned the job.
        at: Time,
    },
    /// Still incomplete when the simulation ended (earns nothing).
    Unfinished,
}

impl JobStatus {
    /// Profit contributed by this job.
    pub fn profit(&self) -> u64 {
        match self {
            JobStatus::Completed { profit, .. } => *profit,
            _ => 0,
        }
    }

    /// True iff completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobStatus::Completed { .. })
    }
}

/// The full result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Name reported by the scheduler.
    pub scheduler: String,
    /// Per-job outcome, indexed by `JobId`.
    pub outcomes: Vec<JobStatus>,
    /// Σ earned profit.
    pub total_profit: u64,
    /// Processor-steps actually consumed, in *unscaled* work units times the
    /// scale (i.e. scaled units); divide by `work_scale` for work units.
    pub scaled_units_processed: u64,
    /// The engine's work scale (speed denominator).
    pub work_scale: u64,
    /// Number of simulated ticks covered by engine iterations (idle gaps
    /// skipped, fast-forward windows counted at their full width). Identical
    /// between the naive and fast-forward execution paths.
    pub ticks_simulated: u64,
    /// Engine scheduling rounds actually executed: one per naive tick plus
    /// one per bulk fast-forward window. Equals `ticks_simulated` on the
    /// naive path; far smaller when fast-forwarding through long stable
    /// stretches. This is the only field the two paths may disagree on.
    pub steps_executed: u64,
    /// Last tick index the engine looked at, plus one.
    pub end_time: Time,
    /// Per-tick allocation record, when
    /// [`SimConfig::record_trace`](crate::SimConfig) was set.
    pub trace: Option<Trace>,
}

impl SimResult {
    /// Completed job count.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_completed()).count()
    }

    /// Expired job count.
    pub fn expired(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, JobStatus::Expired { .. }))
            .count()
    }

    /// Unfinished job count.
    pub fn unfinished(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, JobStatus::Unfinished))
            .count()
    }

    /// Work units processed (exact if every touched node completed or the
    /// scale divides evenly; otherwise floor).
    pub fn work_processed(&self) -> u64 {
        self.scaled_units_processed / self.work_scale
    }

    /// `(job, completion time)` pairs, for [`Trace::stats`](crate::trace::Trace::stats).
    pub fn completions(&self) -> Vec<(dagsched_core::JobId, Time)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match o {
                JobStatus::Completed { at, .. } => Some((dagsched_core::JobId(i as u32), *at)),
                _ => None,
            })
            .collect()
    }

    /// True iff two runs produced the same observable result: everything
    /// except `steps_executed`, which measures engine effort rather than
    /// schedule outcome. The fast-forward equivalence tests assert this
    /// between the naive and event-driven execution paths.
    pub fn same_outcome(&self, other: &SimResult) -> bool {
        self.scheduler == other.scheduler
            && self.outcomes == other.outcomes
            && self.total_profit == other.total_profit
            && self.scaled_units_processed == other.scaled_units_processed
            && self.work_scale == other.work_scale
            && self.ticks_simulated == other.ticks_simulated
            && self.end_time == other.end_time
            && self.trace == other.trace
    }

    /// Completion time of the last completed job, if any.
    pub fn makespan(&self) -> Option<Time> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                JobStatus::Completed { at, .. } => Some(*at),
                _ => None,
            })
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimResult {
        SimResult {
            scheduler: "test".into(),
            outcomes: vec![
                JobStatus::Completed {
                    at: Time(5),
                    profit: 10,
                },
                JobStatus::Expired { at: Time(3) },
                JobStatus::Completed {
                    at: Time(9),
                    profit: 4,
                },
                JobStatus::Unfinished,
            ],
            total_profit: 14,
            scaled_units_processed: 21,
            work_scale: 2,
            ticks_simulated: 9,
            steps_executed: 9,
            end_time: Time(9),
            trace: None,
        }
    }

    #[test]
    fn counters() {
        let r = sample();
        assert_eq!(r.completed(), 2);
        assert_eq!(r.expired(), 1);
        assert_eq!(r.unfinished(), 1);
        assert_eq!(r.makespan(), Some(Time(9)));
        assert_eq!(r.work_processed(), 10);
    }

    #[test]
    fn same_outcome_ignores_steps_executed_only() {
        let a = sample();
        let mut b = sample();
        b.steps_executed = 2;
        assert!(a.same_outcome(&b), "engine effort is not an outcome");
        let mut c = sample();
        c.total_profit = 15;
        assert!(!a.same_outcome(&c));
        let mut d = sample();
        d.ticks_simulated = 10;
        assert!(!a.same_outcome(&d));
    }

    #[test]
    fn status_profit() {
        assert_eq!(
            JobStatus::Completed {
                at: Time(1),
                profit: 7
            }
            .profit(),
            7
        );
        assert_eq!(JobStatus::Expired { at: Time(1) }.profit(), 0);
        assert_eq!(JobStatus::Unfinished.profit(), 0);
        assert!(JobStatus::Completed {
            at: Time(1),
            profit: 0
        }
        .is_completed());
        assert!(!JobStatus::Unfinished.is_completed());
    }
}
