//! # dagsched-engine
//!
//! A deterministic discrete-time simulator for online scheduling of DAG jobs
//! on `m` identical processors with rational speed augmentation.
//!
//! The engine enforces the paper's **semi-non-clairvoyant** information
//! model at the API level: a scheduler implementing [`OnlineScheduler`]
//! learns, per job, only `(W, L, profit function)` at arrival plus the
//! current *ready-node counts* each tick — never the DAG structure. Which
//! concrete ready nodes run is decided by the engine's [`NodePick`] policy
//! ("the scheduler arbitrarily picks ready nodes"), which is how the
//! adversarial executions of Theorem 1 are realized.
//!
//! Execution model (see DESIGN.md §4):
//!
//! * one tick = one unit of time; a speed-`num/den` processor completes
//!   `num` units of `den`-scaled work per tick — all arithmetic exact;
//!   related-machines platforms ([`MachineGroups`](dagsched_core::MachineGroups)
//!   via [`SimConfig::groups`]) scale every group to one common lcm
//!   denominator so heterogeneous progress stays integral;
//! * a node is executed by at most one processor per tick;
//! * within a tick, a processor finishing a node may continue on another
//!   ready node of the *same job* (configurable carry-over), which realizes
//!   Observation 1 for chains;
//! * a job completing its last node during tick `t` has completion time
//!   `t + 1` and earns `p(t + 1 − r)`;
//! * a deadline job expires (is abandoned and reported) at the first tick
//!   from which even immediate completion would earn only the profit tail.

#![warn(missing_docs)]

pub mod clock;
pub mod driver;
pub mod events;
pub mod lifecycle;
pub mod observe;
pub mod pick;
pub mod platform;
pub mod reference;
pub mod result;
pub mod runner;
pub mod sched_api;
pub mod sim;
pub mod trace;

pub use clock::auto_horizon;
pub use driver::SimDriver;
pub use events::WindowMode;
pub use observe::{
    AdmissionDecision, AdmissionEvent, AdmissionReason, NullObserver, Observers, SimObserver,
};
pub use pick::NodePick;
pub use reference::{HorizonScan, ViewRebuild};
pub use result::{JobStatus, SimResult};
pub use runner::parallel_map;
pub use sched_api::{Allocation, JobInfo, OnlineScheduler, TickView, ViewDelta};
pub use sim::{simulate, simulate_observed, HandoffMode, PlatformMode, SimConfig};
pub use trace::{Trace, TraceStats};
