//! Runtime observation of a simulation: the [`SimObserver`] hook API.
//!
//! The paper's correctness story rests on invariants that must hold *at all
//! times* — Observation 3's band capacity, Lemma 1's fixed allotments,
//! δ-goodness of every started job — not just in the final accounting. An
//! observer attaches to [`simulate_observed`](crate::simulate_observed) and
//! receives a callback for every semantic event of the run: job arrivals,
//! admission decisions (forwarded from the scheduler), allocation windows,
//! node and job completions, and expiries. The `dagsched-verify` crate builds
//! continuously-checked invariant monitors and a replayable event log on top
//! of this interface.
//!
//! ## The event-stream equivalence contract
//!
//! Both engine execution paths — the naive per-tick reference path and the
//! event-driven fast-forward path — emit the **same** event stream, making
//! the stream itself a third equivalence oracle (beyond
//! [`SimResult`](crate::SimResult) equality and the per-scheduler
//! differential tests). The one freedom the two paths have is window
//! granularity: the reference path reports each tick as a width-1
//! [`on_window`](SimObserver::on_window), while the fast-forward path reports
//! a whole stable stretch as one wide window. Because a stable window has, by
//! construction, a constant allocation and constant ready counts, adjacent
//! windows with identical `(jobs, alloc)` can be coalesced losslessly —
//! which is exactly what `dagsched-verify`'s `EventLog` does before
//! serializing, restoring byte-identical streams.
//!
//! ## Ordering contract
//!
//! Within one engine step at time `t`, callbacks fire in this order:
//!
//! 1. [`on_job_arrival`](SimObserver::on_job_arrival) for each job with
//!    `arrival ≤ t`, in arrival order;
//! 2. [`on_admission`](SimObserver::on_admission) for every decision the
//!    scheduler recorded while handling those arrivals;
//! 3. [`on_job_expired`](SimObserver::on_job_expired) for each zero-tail job
//!    past its last useful moment;
//! 4. [`on_window`](SimObserver::on_window) for the tick (or bulk window)
//!    starting at `t`;
//! 5. [`on_node_complete`](SimObserver::on_node_complete) for each node
//!    finished during the tick, in execution order (never fires inside a
//!    bulk window — windows end strictly before any node completes);
//! 6. [`on_job_complete`](SimObserver::on_job_complete) at `t + 1` for each
//!    job whose last node finished, followed by the admission decisions the
//!    scheduler recorded during its completion hooks.
//!
//! [`on_start`](SimObserver::on_start) opens the run and
//! [`on_end`](SimObserver::on_end) closes it unconditionally.

use crate::sched_api::JobInfo;
use dagsched_core::{JobId, MachineGroups, NodeId, Speed, Time};

/// Why a scheduler declined (or deferred) starting a job.
///
/// The variants cover the admission vocabularies of the production
/// schedulers: scheduler S's δ-good / band-capacity tests, EDF-AC's
/// demand-bound test, and the unconditional ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionReason {
    /// Condition (2): some density band `[v_j, c·v_j)` would exceed `b·m`.
    BandCapacity,
    /// The job is not δ-good: `D < (1+2δ)·x` at its computed allotment.
    NotDeltaGood,
    /// The deadline is infeasible at any allotment (not δ-good even at
    /// `n = m`).
    Infeasible,
    /// EDF-AC: total admitted demand by some deadline would exceed
    /// `m · (d − now)`.
    DemandBound,
    /// EDF-AC: the job's span does not fit its own window.
    SpanInfeasible,
    /// The job's absolute deadline passed while it waited.
    DeadlinePassed,
    /// No admission control was applied (ablation schedulers).
    Unconditional,
}

impl AdmissionReason {
    /// Stable lower-case token for serialization.
    pub fn token(self) -> &'static str {
        match self {
            AdmissionReason::BandCapacity => "band-capacity",
            AdmissionReason::NotDeltaGood => "not-delta-good",
            AdmissionReason::Infeasible => "infeasible",
            AdmissionReason::DemandBound => "demand-bound",
            AdmissionReason::SpanInfeasible => "span-infeasible",
            AdmissionReason::DeadlinePassed => "deadline-passed",
            AdmissionReason::Unconditional => "unconditional",
        }
    }
}

/// A scheduler's verdict on one job at one decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The job was started (admitted to the running queue).
    Admitted,
    /// The job was parked in a waiting queue and may start at a later event.
    Deferred(AdmissionReason),
    /// The job was dropped permanently.
    Rejected(AdmissionReason),
}

/// One admission decision, as drained from the scheduler by the engine and
/// forwarded to observers via [`SimObserver::on_admission`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionEvent {
    /// The job decided on.
    pub job: JobId,
    /// The verdict.
    pub decision: AdmissionDecision,
}

/// Observer of a simulation run. All methods default to no-ops so observers
/// implement only what they watch.
///
/// See the [module docs](self) for the ordering contract and the event-stream
/// equivalence guarantee between the two engine execution paths.
pub trait SimObserver {
    /// Whether the engine should pay the (small) cost of assembling event
    /// payloads — per-job progress vectors and node-completion lists.
    /// [`NullObserver`] returns `false`, which lets the optimizer erase all
    /// observation work from the unobserved path.
    fn is_active(&self) -> bool {
        true
    }

    /// The run is starting on `m` processors at `speed`, with the given
    /// horizon. On a heterogeneous platform `speed` is the fastest group's
    /// speed and [`on_platform`](Self::on_platform) follows with the full
    /// group description.
    fn on_start(&mut self, m: u32, speed: Speed, horizon: Time) {
        let _ = (m, speed, horizon);
    }

    /// The run's platform is heterogeneous: the full machine-group
    /// description, fired immediately after [`on_start`](Self::on_start).
    /// **Never fires on a uniform platform** — uniform runs keep the exact
    /// pre-group event stream, so byte-level stream equality against the
    /// scalar-speed twin holds without observer awareness.
    fn on_platform(&mut self, groups: &MachineGroups) {
        let _ = groups;
    }

    /// A job arrived (the scheduler's arrival hook has already run).
    fn on_job_arrival(&mut self, now: Time, info: &JobInfo) {
        let _ = (now, info);
    }

    /// The scheduler recorded an admission decision.
    fn on_admission(&mut self, now: Time, event: AdmissionEvent) {
        let _ = (now, event);
    }

    /// `ticks` consecutive ticks starting at `at` ran with the allocation
    /// `alloc` over alive jobs `jobs` (the scheduler's tick view:
    /// `(id, ready_count)` pairs). `progress` reports the scaled work units
    /// each allocated job advanced across the whole window, aligned with
    /// `alloc`. The reference path always reports `ticks == 1`; the
    /// fast-forward path reports whole stable windows.
    fn on_window(
        &mut self,
        at: Time,
        ticks: u64,
        jobs: &[(JobId, u32)],
        alloc: &[(JobId, u32)],
        progress: &[(JobId, u64)],
    ) {
        let _ = (at, ticks, jobs, alloc, progress);
    }

    /// A DAG node of `job` finished during tick `at`.
    fn on_node_complete(&mut self, at: Time, job: JobId, node: NodeId) {
        let _ = (at, job, node);
    }

    /// `job` completed at time `at`, earning `profit`.
    fn on_job_complete(&mut self, at: Time, job: JobId, profit: u64) {
        let _ = (at, job, profit);
    }

    /// `job` was abandoned at `at`: completing could no longer earn above
    /// its profit tail.
    fn on_job_expired(&mut self, at: Time, job: JobId) {
        let _ = (at, job);
    }

    /// The run ended at time `at`.
    fn on_end(&mut self, at: Time) {
        let _ = at;
    }
}

/// The do-nothing observer: [`simulate`](crate::simulate) runs with this, and
/// its `is_active() == false` lets the engine skip every payload-assembly
/// branch — the unobserved path monomorphizes to exactly the pre-observer
/// code (the `observer-overhead` bench group holds this to measurement).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SimObserver for NullObserver {
    #[inline(always)]
    fn is_active(&self) -> bool {
        false
    }
}

/// Fan-out combinator: forwards every callback to each observer in order.
///
/// ```
/// # use dagsched_engine::observe::{Observers, SimObserver, NullObserver};
/// let mut a = NullObserver;
/// let mut b = NullObserver;
/// let mut set = Observers::new(vec![&mut a, &mut b]);
/// assert!(!set.is_active(), "all-inactive sets stay inactive");
/// ```
pub struct Observers<'a> {
    inner: Vec<&'a mut dyn SimObserver>,
}

impl<'a> Observers<'a> {
    /// Compose a set of observers.
    pub fn new(inner: Vec<&'a mut dyn SimObserver>) -> Observers<'a> {
        Observers { inner }
    }
}

impl SimObserver for Observers<'_> {
    fn is_active(&self) -> bool {
        self.inner.iter().any(|o| o.is_active())
    }
    fn on_start(&mut self, m: u32, speed: Speed, horizon: Time) {
        for o in &mut self.inner {
            o.on_start(m, speed, horizon);
        }
    }
    fn on_platform(&mut self, groups: &MachineGroups) {
        for o in &mut self.inner {
            o.on_platform(groups);
        }
    }
    fn on_job_arrival(&mut self, now: Time, info: &JobInfo) {
        for o in &mut self.inner {
            o.on_job_arrival(now, info);
        }
    }
    fn on_admission(&mut self, now: Time, event: AdmissionEvent) {
        for o in &mut self.inner {
            o.on_admission(now, event);
        }
    }
    fn on_window(
        &mut self,
        at: Time,
        ticks: u64,
        jobs: &[(JobId, u32)],
        alloc: &[(JobId, u32)],
        progress: &[(JobId, u64)],
    ) {
        for o in &mut self.inner {
            o.on_window(at, ticks, jobs, alloc, progress);
        }
    }
    fn on_node_complete(&mut self, at: Time, job: JobId, node: NodeId) {
        for o in &mut self.inner {
            o.on_node_complete(at, job, node);
        }
    }
    fn on_job_complete(&mut self, at: Time, job: JobId, profit: u64) {
        for o in &mut self.inner {
            o.on_job_complete(at, job, profit);
        }
    }
    fn on_job_expired(&mut self, at: Time, job: JobId) {
        for o in &mut self.inner {
            o.on_job_expired(at, job);
        }
    }
    fn on_end(&mut self, at: Time) {
        for o in &mut self.inner {
            o.on_end(at);
        }
    }
}

impl SimObserver for &mut dyn SimObserver {
    fn is_active(&self) -> bool {
        (**self).is_active()
    }
    fn on_start(&mut self, m: u32, speed: Speed, horizon: Time) {
        (**self).on_start(m, speed, horizon);
    }
    fn on_platform(&mut self, groups: &MachineGroups) {
        (**self).on_platform(groups);
    }
    fn on_job_arrival(&mut self, now: Time, info: &JobInfo) {
        (**self).on_job_arrival(now, info);
    }
    fn on_admission(&mut self, now: Time, event: AdmissionEvent) {
        (**self).on_admission(now, event);
    }
    fn on_window(
        &mut self,
        at: Time,
        ticks: u64,
        jobs: &[(JobId, u32)],
        alloc: &[(JobId, u32)],
        progress: &[(JobId, u64)],
    ) {
        (**self).on_window(at, ticks, jobs, alloc, progress);
    }
    fn on_node_complete(&mut self, at: Time, job: JobId, node: NodeId) {
        (**self).on_node_complete(at, job, node);
    }
    fn on_job_complete(&mut self, at: Time, job: JobId, profit: u64) {
        (**self).on_job_complete(at, job, profit);
    }
    fn on_job_expired(&mut self, at: Time, job: JobId) {
        (**self).on_job_expired(at, job);
    }
    fn on_end(&mut self, at: Time) {
        (**self).on_end(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Work;
    use dagsched_workload::StepProfitFn;

    /// Counts every callback; used to check fan-out and default no-ops.
    #[derive(Default)]
    struct Counter {
        calls: usize,
    }

    impl SimObserver for Counter {
        fn on_start(&mut self, _m: u32, _s: Speed, _h: Time) {
            self.calls += 1;
        }
        fn on_job_arrival(&mut self, _t: Time, _i: &JobInfo) {
            self.calls += 1;
        }
        fn on_admission(&mut self, _t: Time, _e: AdmissionEvent) {
            self.calls += 1;
        }
        fn on_window(
            &mut self,
            _a: Time,
            _t: u64,
            _j: &[(JobId, u32)],
            _al: &[(JobId, u32)],
            _p: &[(JobId, u64)],
        ) {
            self.calls += 1;
        }
        fn on_node_complete(&mut self, _a: Time, _j: JobId, _n: NodeId) {
            self.calls += 1;
        }
        fn on_job_complete(&mut self, _a: Time, _j: JobId, _p: u64) {
            self.calls += 1;
        }
        fn on_job_expired(&mut self, _a: Time, _j: JobId) {
            self.calls += 1;
        }
        fn on_end(&mut self, _a: Time) {
            self.calls += 1;
        }
    }

    #[test]
    fn fan_out_reaches_every_observer_once_per_event() {
        let mut a = Counter::default();
        let mut b = Counter::default();
        {
            let mut set = Observers::new(vec![&mut a, &mut b]);
            assert!(set.is_active());
            set.on_start(4, Speed::ONE, Time(100));
            set.on_job_arrival(
                Time(0),
                &JobInfo {
                    id: JobId(0),
                    arrival: Time(0),
                    work: Work(5),
                    span: Work(1),
                    profit: StepProfitFn::deadline(Time(10), 1),
                },
            );
            set.on_admission(
                Time(0),
                AdmissionEvent {
                    job: JobId(0),
                    decision: AdmissionDecision::Admitted,
                },
            );
            set.on_window(
                Time(0),
                3,
                &[(JobId(0), 2)],
                &[(JobId(0), 1)],
                &[(JobId(0), 3)],
            );
            set.on_node_complete(Time(3), JobId(0), NodeId(0));
            set.on_job_complete(Time(4), JobId(0), 1);
            set.on_job_expired(Time(4), JobId(1));
            set.on_end(Time(5));
        }
        assert_eq!(a.calls, 8);
        assert_eq!(b.calls, 8);
    }

    #[test]
    fn null_observer_is_inactive_and_ignores_everything() {
        let mut n = NullObserver;
        assert!(!n.is_active());
        n.on_start(1, Speed::ONE, Time(1));
        n.on_end(Time(1));
        let mut set = Observers::new(vec![]);
        assert!(!set.is_active(), "empty set is inactive");
        set.on_end(Time(0));
    }

    #[test]
    fn reason_tokens_are_distinct() {
        use AdmissionReason::*;
        let all = [
            BandCapacity,
            NotDeltaGood,
            Infeasible,
            DemandBound,
            SpanInfeasible,
            DeadlinePassed,
            Unconditional,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.token(), b.token());
            }
        }
    }
}
