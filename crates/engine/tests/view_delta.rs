//! The maintained tick view against its frozen twin: after *every* step of
//! *any* run, `Lifecycle::view()` must equal what
//! [`ViewRebuild::build`] reconstructs from the alive list — same jobs,
//! same ready counts, same (arrival) order. This is the engine-level half
//! of the delta-handoff oracle; `view_delta_differential` in the verify
//! crate pins the scheduler-facing half (full runs, byte-identical output).
//!
//! Also pins the `allocate_delta` contract from the engine side with a
//! minimal delta-capable scheduler: on an empty delta the engine hands the
//! scheduler the *same* buffer still holding the previous allocation, and a
//! cached replay is indistinguishable from a recompute.

use dagsched_core::{JobId, Time};
use dagsched_dag::gen;
use dagsched_engine::{
    simulate, Allocation, HandoffMode, JobInfo, OnlineScheduler, SimConfig, SimDriver, TickView,
    ViewDelta, ViewRebuild, WindowMode,
};
use dagsched_workload::{Instance, JobSpec, StepProfitFn, WorkloadGen};

/// Greedy arrival-order scheduler with an `allocate_delta` that replays the
/// cached allocation on empty deltas and otherwise recomputes from the
/// view. Counts which branch ran so tests can assert replays happen.
struct CountingGreedy {
    cache_live: bool,
    replays: u64,
    recomputes: u64,
    declines: bool,
}

impl CountingGreedy {
    fn new() -> CountingGreedy {
        CountingGreedy {
            cache_live: false,
            replays: 0,
            recomputes: 0,
            declines: false,
        }
    }

    /// A variant that declines every delta call: exercises the engine's
    /// fallback (maintained view + full `allocate_into`).
    fn declining() -> CountingGreedy {
        CountingGreedy {
            declines: true,
            ..CountingGreedy::new()
        }
    }
}

impl OnlineScheduler for CountingGreedy {
    fn name(&self) -> String {
        "counting-greedy".into()
    }
    fn on_arrival(&mut self, _info: &JobInfo, _now: Time) {}
    fn on_completion(&mut self, _id: JobId, _now: Time) {}
    fn on_expiry(&mut self, _id: JobId, _now: Time) {}
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut out = Vec::new();
        self.allocate_into(view, &mut out);
        out
    }
    fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        self.cache_live = false;
        out.clear();
        let mut left = view.m;
        for &(id, r) in view.jobs() {
            if left == 0 {
                break;
            }
            let k = r.min(left);
            if k > 0 {
                out.push((id, k));
                left -= k;
            }
        }
    }
    fn allocate_delta(
        &mut self,
        delta: &ViewDelta,
        view: &TickView<'_>,
        out: &mut Allocation,
    ) -> bool {
        if self.declines {
            return false;
        }
        if self.cache_live && delta.is_empty() {
            self.replays += 1;
            return true;
        }
        self.recomputes += 1;
        self.allocate_into(view, out);
        self.cache_live = true;
        true
    }
    fn allocation_stable_between_events(&self) -> bool {
        true
    }
    fn reset(&mut self) -> bool {
        self.cache_live = false;
        self.replays = 0;
        self.recomputes = 0;
        true
    }
}

/// Step `inst` to completion under `cfg`, asserting after every step that
/// the maintained view equals a fresh rebuild. Returns (profit, steps).
fn run_pinned(inst: &Instance, cfg: &SimConfig, sched: &mut dyn OnlineScheduler) -> (u64, u64) {
    let mut driver = SimDriver::new(inst, sched, cfg);
    let mut rebuilt: Vec<(JobId, u32)> = Vec::new();
    loop {
        let more = driver.step().expect("step succeeds");
        ViewRebuild::build(driver.lifecycle(), &mut rebuilt);
        assert_eq!(
            driver.lifecycle().view(),
            &rebuilt[..],
            "maintained view diverged from rebuild at t={:?}",
            driver.now()
        );
        if !more {
            break;
        }
    }
    let r = driver.finish().expect("finish succeeds");
    (r.total_profit, r.steps_executed)
}

fn knob_grid() -> Vec<SimConfig> {
    let mut cfgs = Vec::new();
    for window in [WindowMode::EventKernel, WindowMode::ReferenceScan] {
        for handoff in [HandoffMode::Delta, HandoffMode::Rebuild] {
            for fast_forward in [true, false] {
                cfgs.push(SimConfig {
                    window,
                    handoff,
                    fast_forward,
                    ..SimConfig::default()
                });
            }
        }
    }
    cfgs
}

#[test]
fn maintained_view_equals_rebuild_on_standard_workloads() {
    for seed in [3u64, 41, 977] {
        let m = 3 + (seed % 4) as u32;
        let inst = WorkloadGen::standard(m, 25, seed)
            .generate()
            .expect("valid workload");
        let mut outcomes = Vec::new();
        for cfg in knob_grid() {
            let mut s = CountingGreedy::new();
            outcomes.push(run_pinned(&inst, &cfg, &mut s));
        }
        // Every knob combination also agrees on profit (steps legitimately
        // differ between fast-forward and naive pacing).
        assert!(
            outcomes.windows(2).all(|w| w[0].0 == w[1].0),
            "seed {seed}: profits diverge across knobs: {outcomes:?}"
        );
    }
}

#[test]
fn declining_scheduler_rides_the_fallback_identically() {
    let inst = WorkloadGen::standard(4, 30, 11)
        .generate()
        .expect("valid workload");
    for cfg in knob_grid() {
        let mut accepting = CountingGreedy::new();
        let mut declining = CountingGreedy::declining();
        let a = run_pinned(&inst, &cfg, &mut accepting);
        let d = run_pinned(&inst, &cfg, &mut declining);
        assert_eq!(a, d, "fallback diverges under {cfg:?}");
    }
}

#[test]
fn empty_deltas_actually_replay_on_a_parked_instance() {
    // Forty parked jobs and one long-running foreground job: after the
    // initial burst, steps between events see empty deltas, so the cached
    // allocation must be replayed, not recomputed.
    let mut jobs: Vec<JobSpec> = (0..40u32)
        .map(|i| {
            JobSpec::new(
                JobId(i),
                Time(0),
                gen::single(10_000).into_shared(),
                StepProfitFn::deadline(Time(500_000), 1),
            )
        })
        .collect();
    jobs.push(JobSpec::new(
        JobId(40),
        Time(0),
        gen::single(2_000).into_shared(),
        StepProfitFn::deadline(Time(500_000), 5),
    ));
    let inst = Instance::new(2, jobs).expect("valid parked instance");

    // Naive pacing so every tick is a step: the replay branch must carry
    // nearly the whole run.
    let cfg = SimConfig {
        fast_forward: false,
        ..SimConfig::default()
    };
    let mut s = CountingGreedy::new();
    let r = simulate(&inst, &mut s, &cfg).expect("run succeeds");
    assert!(r.total_profit > 0);
    assert!(
        s.replays > 100 * s.recomputes.max(1),
        "parked steady state should be replay-dominated: {} replays, {} recomputes",
        s.replays,
        s.recomputes
    );
}

#[test]
fn rebuild_mode_never_calls_allocate_delta() {
    let inst = WorkloadGen::standard(4, 20, 5)
        .generate()
        .expect("valid workload");
    let cfg = SimConfig {
        handoff: HandoffMode::Rebuild,
        ..SimConfig::default()
    };
    let mut s = CountingGreedy::new();
    simulate(&inst, &mut s, &cfg).expect("run succeeds");
    assert_eq!(s.replays + s.recomputes, 0, "rebuild mode is delta-free");
}

#[test]
fn same_step_admit_and_expire_nets_out_of_the_view() {
    // Job 1 arrives already hopeless (deadline 0 profit tail 0): it is
    // admitted and expired within the same step, so the view never shows
    // it and the delta the scheduler sees nets to absent. The maintained
    // view must agree with the rebuild throughout (run_pinned asserts it).
    let jobs = vec![
        JobSpec::new(
            JobId(0),
            Time(0),
            gen::chain(3, 4).into_shared(),
            StepProfitFn::deadline(Time(100), 2),
        ),
        JobSpec::new(
            JobId(1),
            Time(2),
            gen::single(50).into_shared(),
            StepProfitFn::deadline(Time(1), 9),
        ),
    ];
    let inst = Instance::new(2, jobs).expect("valid instance");
    for cfg in knob_grid() {
        let mut s = CountingGreedy::new();
        let (profit, _) = run_pinned(&inst, &cfg, &mut s);
        assert_eq!(profit, 2, "only job 0 can earn");
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Collision-dense instances: single-digit arrivals, works and
    /// deadlines force same-step admit/expire/complete interleavings.
    fn collision_instance(seed: u64, n: usize, m: u32) -> Instance {
        let mut rng = dagsched_core::Rng64::seed_from(seed);
        let mut arrivals: Vec<u64> = (0..n).map(|_| rng.gen_range(8)).collect();
        arrivals.sort_unstable();
        let jobs: Vec<JobSpec> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let work = 1 + rng.gen_range(6);
                let dag = if rng.gen_range(2) == 0 {
                    gen::single(work).into_shared()
                } else {
                    gen::chain(2, work.max(1)).into_shared()
                };
                let deadline = 1 + rng.gen_range(9);
                JobSpec::new(
                    JobId(i as u32),
                    Time(a),
                    dag,
                    StepProfitFn::deadline(Time(deadline), 1 + rng.gen_range(5)),
                )
            })
            .collect();
        Instance::new(m, jobs).expect("valid collision instance")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// After arbitrary admit/expire/complete interleavings, under every
        /// knob combination, the maintained view equals a fresh rebuild at
        /// every step and both handoffs agree on the outcome.
        #[test]
        fn maintained_view_equals_rebuild_under_ties(
            seed in 0u64..2000,
            n in 2usize..12,
            m in 1u32..4,
            ff in 0u8..2,
            decline in 0u8..2,
        ) {
            let inst = collision_instance(seed, n, m);
            let mut results = Vec::new();
            for handoff in [HandoffMode::Delta, HandoffMode::Rebuild] {
                let cfg = SimConfig {
                    handoff,
                    fast_forward: ff == 1,
                    ..SimConfig::default()
                };
                let mut s = if decline == 1 {
                    CountingGreedy::declining()
                } else {
                    CountingGreedy::new()
                };
                results.push(run_pinned(&inst, &cfg, &mut s));
            }
            prop_assert_eq!(
                results[0], results[1],
                "delta vs rebuild outcome diverged (seed {}, n {}, m {})",
                seed, n, m
            );
        }

        /// Pausing a delta run at arbitrary horizons leaves the maintained
        /// view equal to a rebuild at every pause point and at the end.
        #[test]
        fn paused_runs_keep_the_view_pinned(
            seed in 0u64..500,
            hseed in 0u64..500,
            n_pauses in 1usize..8,
        ) {
            let m = 2 + (seed % 3) as u32;
            let inst = WorkloadGen::standard(m, 15, seed)
                .generate()
                .expect("valid workload");
            let span = inst.stats().horizon.ticks() + 8;
            let mut rng = dagsched_core::Rng64::seed_from(hseed);
            let cfg = SimConfig::default();
            let mut s = CountingGreedy::new();
            let mut driver = SimDriver::new(&inst, &mut s, &cfg);
            let mut rebuilt: Vec<(JobId, u32)> = Vec::new();
            for _ in 0..n_pauses {
                driver
                    .run_until(Time(rng.gen_range(span.max(1))))
                    .expect("run_until runs");
                ViewRebuild::build(driver.lifecycle(), &mut rebuilt);
                prop_assert_eq!(driver.lifecycle().view(), &rebuilt[..]);
            }
            driver.finish().expect("finish runs");
        }
    }
}
