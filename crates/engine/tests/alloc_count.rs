//! Zero heap allocations per arrival once the lifecycle pool is warm.
//!
//! This binary installs a counting global allocator (test-only — each
//! integration test file is its own binary, so the counter never leaks into
//! other suites) and drives an arrival storm of identical small jobs through
//! the real `SimDriver`. After a warm-up prefix lets the pool reach its
//! high-water mark, the remaining hundreds of arrivals, completions, and
//! ticks must not touch the allocator at all: `Live` slots come from the
//! pool, `reset_from` reuses its vectors, the `JobInfo` profit clone is an
//! `Arc` bump, and the scheduler's `allocate_into` writes into the hoisted
//! buffer.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use dagsched_core::{JobId, Time};
use dagsched_dag::gen;
use dagsched_engine::{Allocation, JobInfo, OnlineScheduler, SimConfig, SimDriver, TickView};
use dagsched_workload::{Instance, JobSpec, StepProfitFn};

/// Counts every allocator entry (alloc and realloc) on top of [`System`],
/// per thread. The count must be thread-local rather than a process-wide
/// atomic: libtest runs its own harness threads concurrently with the test
/// thread, and a stray harness allocation landing inside the measurement
/// window would flake an otherwise deterministic run. The whole simulation
/// executes on the test thread, so its counter alone is the proof.
struct CountingAlloc;

thread_local! {
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with` instead of `with`: the allocator can be entered during
    // thread teardown after the TLS slot is destroyed; those allocations
    // belong to no measurement window anyway.
    let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_CALLS.with(Cell::get)
}

/// Work-conserving FIFO scheduler whose steady-state event path is
/// allocation-free: `allocate_into` fills the engine's hoisted buffer and
/// the hooks do nothing.
struct LeanGreedy;

impl OnlineScheduler for LeanGreedy {
    fn name(&self) -> String {
        "lean-greedy".into()
    }
    fn on_arrival(&mut self, _job: &JobInfo, _now: Time) {}
    fn on_completion(&mut self, _id: JobId, _now: Time) {}
    fn on_expiry(&mut self, _id: JobId, _now: Time) {}
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut out = Vec::new();
        self.allocate_into(view, &mut out);
        out
    }
    fn allocate_into(&mut self, view: &TickView<'_>, out: &mut Allocation) {
        out.clear();
        let mut left = view.m;
        for &(id, ready) in view.jobs() {
            if left == 0 {
                break;
            }
            let k = ready.min(left);
            if k > 0 {
                out.push((id, k));
                left -= k;
            }
        }
    }
    fn allocation_stable_between_events(&self) -> bool {
        true
    }
}

/// An arrival storm: `n` identical 3-node chain jobs, one arriving per tick,
/// generous deadlines so nothing expires. A chain job occupies one processor
/// for 6 ticks, so `m = 8` keeps the service rate (8/6 jobs per tick) above
/// the arrival rate (1 per tick): the alive set — and with it the pool's
/// high-water mark — stays bounded while arrivals keep churning slots. (An
/// overloaded platform would grow the alive set forever and the pool would
/// never see a completion.)
fn storm_instance(n: u32) -> Instance {
    let dag = gen::chain(3, 2).into_shared();
    let jobs: Vec<JobSpec> = (0..n)
        .map(|i| {
            JobSpec::new(
                JobId(i),
                Time(u64::from(i)),
                dag.clone(),
                StepProfitFn::deadline(Time(1_000_000), 1),
            )
        })
        .collect();
    Instance::new(8, jobs).expect("valid storm instance")
}

#[test]
fn warm_pool_arrivals_do_not_allocate() {
    let inst = storm_instance(600);
    let cfg = SimConfig::default();
    let mut sched = LeanGreedy;
    let mut driver = SimDriver::new(&inst, &mut sched, &cfg);

    // Warm-up: run through the first 200 arrivals. This reaches the pool's
    // high-water mark and lets every hoisted buffer hit final capacity.
    driver.run_until(Time(200)).expect("warm-up runs");
    let before = allocations();

    // Steady state: 399 more arrivals (plus their completions and every
    // tick in between) with the allocator untouched. The window ends at the
    // last arrival — once arrivals stop, the alive set drains and every
    // slot lands in the pool at once, which may legitimately grow the pool
    // vector past its steady-state high-water mark.
    driver.run_until(Time(599)).expect("steady state runs");
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "expected zero heap allocations across ~400 warm-pool arrivals, got {delta}"
    );

    // The run must still be a *real* run: finish it and check every job
    // completed with its profit.
    let result = driver.finish().expect("finish runs");
    assert_eq!(result.total_profit, 600);
}
