//! Equivalence and complexity guarantees of the event-driven fast-forward
//! path.
//!
//! The fast-forward engine must be *observably indistinguishable* from the
//! naive tick-by-tick reference path — same outcomes, profit, units
//! processed, tick accounting — differing only in `steps_executed`, the
//! count of engine scheduling rounds. These tests drive both paths over
//! random workloads, speeds, and pick policies and hold them byte-identical,
//! then pin the complexity win: huge-node-work instances must simulate in
//! O(#nodes) engine iterations, not O(total work).

use dagsched_core::{JobId, Speed, Time};
use dagsched_dag::gen;
use dagsched_engine::{
    simulate, Allocation, JobInfo, NodePick, OnlineScheduler, SimConfig, TickView,
};
use dagsched_workload::{Instance, JobSpec, StepProfitFn, WorkloadGen};
use proptest::prelude::*;

/// Work-conserving FIFO-by-arrival scheduler that opts into fast-forward:
/// a pure function of the view, so the stability contract holds.
struct Greedy;

impl OnlineScheduler for Greedy {
    fn name(&self) -> String {
        "greedy-ff".into()
    }
    fn on_arrival(&mut self, _job: &JobInfo, _now: Time) {}
    fn on_completion(&mut self, _id: JobId, _now: Time) {}
    fn on_expiry(&mut self, _id: JobId, _now: Time) {}
    fn allocate(&mut self, view: &TickView<'_>) -> Allocation {
        let mut left = view.m;
        let mut out = Vec::new();
        for &(id, ready) in view.jobs() {
            if left == 0 {
                break;
            }
            let k = ready.min(left);
            if k > 0 {
                out.push((id, k));
                left -= k;
            }
        }
        out
    }
    fn allocation_stable_between_events(&self) -> bool {
        true
    }
}

fn run_both(
    inst: &Instance,
    cfg_base: &SimConfig,
) -> (dagsched_engine::SimResult, dagsched_engine::SimResult) {
    let fast = simulate(inst, &mut Greedy, cfg_base).expect("fast path runs");
    let naive_cfg = SimConfig {
        fast_forward: false,
        ..cfg_base.clone()
    };
    let naive = simulate(inst, &mut Greedy, &naive_cfg).expect("naive path runs");
    (fast, naive)
}

fn speed_of(idx: u8) -> Speed {
    match idx {
        0 => Speed::ONE,
        1 => Speed::new(3, 2).expect("3/2 is positive"),
        _ => Speed::integer(2).expect("2 is positive"),
    }
}

fn pick_of(idx: u8, seed: u64) -> NodePick {
    match idx {
        0 => NodePick::Fifo,
        1 => NodePick::Random(seed),
        _ => NodePick::CriticalPathFirst,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast-forward ≡ naive, byte for byte, over random workloads ×
    /// {1, 3/2, 2} speeds × {Fifo, Random, CriticalPathFirst} picks ×
    /// carry-over on/off. (Random pick is fast-forward-unsafe and exercises
    /// the automatic fallback: both runs take the naive path and the gating
    /// logic itself is what's under test.)
    #[test]
    fn fast_forward_equals_naive(
        seed in 0u64..500,
        m in 1u32..9,
        n_jobs in 1usize..25,
        speed_idx in 0u8..3,
        pick_idx in 0u8..3,
        carryover in 0u8..2,
    ) {
        let inst = WorkloadGen::standard(m, n_jobs, seed)
            .generate()
            .expect("valid workload");
        let cfg = SimConfig {
            speed: speed_of(speed_idx),
            pick: pick_of(pick_idx, seed),
            carryover: carryover == 1,
            ..SimConfig::default()
        };
        let (fast, naive) = run_both(&inst, &cfg);
        prop_assert_eq!(&fast.outcomes, &naive.outcomes);
        prop_assert_eq!(fast.total_profit, naive.total_profit);
        prop_assert_eq!(fast.scaled_units_processed, naive.scaled_units_processed);
        prop_assert_eq!(fast.ticks_simulated, naive.ticks_simulated);
        prop_assert_eq!(fast.end_time, naive.end_time);
        prop_assert!(fast.same_outcome(&naive));
        prop_assert!(fast.steps_executed <= naive.steps_executed);
        if pick_idx == 1 {
            // Random pick must fall back to the reference path entirely.
            prop_assert_eq!(fast.steps_executed, naive.steps_executed);
        }
    }

    /// Scaling node works by a large factor must not scale engine effort:
    /// steps stay O(#nodes) while simulated ticks grow with total work.
    #[test]
    fn steps_stay_bounded_as_node_work_grows(len in 1u32..10, node_work in 1_000u64..50_000) {
        let inst = Instance::new(
            1,
            vec![JobSpec::new(
                JobId(0),
                Time(0),
                gen::chain(len, node_work).into_shared(),
                StepProfitFn::deadline(Time(10 * len as u64 * node_work), 1),
            )],
        )
        .expect("valid instance");
        let r = simulate(&inst, &mut Greedy, &SimConfig::default()).expect("runs");
        prop_assert_eq!(r.ticks_simulated, len as u64 * node_work);
        // One bulk window + one completion tick per node (plus slack for
        // the final tick bookkeeping): O(#nodes), independent of node_work.
        prop_assert!(
            r.steps_executed <= 3 * len as u64 + 2,
            "{} steps for {} nodes of work {}", r.steps_executed, len, node_work
        );
    }
}

/// The ISSUE acceptance bar, pinned as a regression test: ≥ 10× fewer engine
/// iterations on an instance with node work ≥ 1000.
#[test]
fn fast_forward_is_10x_on_huge_nodes() {
    let inst = Instance::new(
        4,
        vec![JobSpec::new(
            JobId(0),
            Time(0),
            gen::fig1(4, 40, 1000).into_shared(),
            StepProfitFn::deadline(Time(1_000_000), 1),
        )],
    )
    .expect("valid instance");
    let (fast, naive) = run_both(&inst, &SimConfig::default());
    assert!(fast.same_outcome(&naive));
    assert!(
        fast.steps_executed * 10 <= naive.steps_executed,
        "fast path took {} steps, naive {}",
        fast.steps_executed,
        naive.steps_executed
    );
}

/// Expiring jobs mid-window, multi-job contention, and rational speeds all
/// at once: a deterministic smoke test for the window-boundary math.
#[test]
fn boundaries_with_overloaded_deadlines_match() {
    let inst = WorkloadGen {
        deadlines: dagsched_workload::DeadlinePolicy::SlackFactor(1.1),
        ..WorkloadGen::standard(3, 40, 42)
    }
    .generate()
    .expect("valid workload");
    for speed_idx in 0..3u8 {
        let cfg = SimConfig {
            speed: speed_of(speed_idx),
            ..SimConfig::default()
        };
        let (fast, naive) = run_both(&inst, &cfg);
        assert!(
            fast.same_outcome(&naive),
            "divergence at speed index {speed_idx}"
        );
    }
}
