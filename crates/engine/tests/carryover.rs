//! Edge cases of the intra-tick carry-over rule: a processor finishing a
//! node mid-tick may continue into *newly ready* successors, but no other
//! processor may touch nodes that became ready during the tick (they have
//! already spent their tick's time). These tests pin the discretization
//! semantics DESIGN.md §4 documents.

use dagsched_core::{JobId, Speed, Time, Work};
use dagsched_dag::{DagBuilder, UnfoldState};
use dagsched_engine::{simulate, JobInfo, NodePick, OnlineScheduler, SimConfig, TickView};
use dagsched_workload::{Instance, JobSpec, StepProfitFn};

/// Work-conserving test scheduler.
struct Greedy;

impl OnlineScheduler for Greedy {
    fn name(&self) -> String {
        "greedy".into()
    }
    fn on_arrival(&mut self, _j: &JobInfo, _t: Time) {}
    fn on_completion(&mut self, _i: JobId, _t: Time) {}
    fn on_expiry(&mut self, _i: JobId, _t: Time) {}
    fn allocate(&mut self, view: &TickView<'_>) -> Vec<(JobId, u32)> {
        let mut left = view.m;
        let mut out = Vec::new();
        for &(id, ready) in view.jobs() {
            if left == 0 {
                break;
            }
            let k = ready.min(left);
            if k > 0 {
                out.push((id, k));
                left -= k;
            }
        }
        out
    }
}

fn run_one(dag: dagsched_dag::DagJobSpec, m: u32, cfg: &SimConfig) -> Time {
    let horizon = dag.total_work().units() * 4 + 8;
    let inst = Instance::new(
        m,
        vec![JobSpec::new(
            JobId(0),
            Time::ZERO,
            dag.into_shared(),
            StepProfitFn::deadline(Time(horizon), 1),
        )],
    )
    .unwrap();
    simulate(&inst, &mut Greedy, cfg)
        .unwrap()
        .makespan()
        .expect("job completes")
}

/// A two-node chain where the span bound must hold even when another
/// processor is idle and hungry: the successor may not start in the same
/// tick on a *different* processor.
#[test]
fn successor_not_stolen_by_sibling_processor() {
    let mut b = DagBuilder::new();
    let a = b.add_node(Work(1));
    let c = b.add_node(Work(1));
    b.add_edge(a, c).unwrap();
    let dag = b.build().unwrap();
    // m = 2, speed 1: two ticks minimum (span 2), never one.
    let t = run_one(dag, 2, &SimConfig::default());
    assert_eq!(t, Time(2));
}

/// The same chain at speed 2 with carry-over: one tick (the same processor
/// continues into the successor).
#[test]
fn same_processor_continuation_compresses_chains() {
    let mut b = DagBuilder::new();
    let a = b.add_node(Work(1));
    let c = b.add_node(Work(1));
    b.add_edge(a, c).unwrap();
    let dag = b.build().unwrap();
    let cfg = SimConfig::at_speed(Speed::integer(2).unwrap());
    assert_eq!(run_one(dag, 1, &cfg), Time(1));
}

/// Without carry-over the continuation is forbidden even for the finishing
/// processor.
#[test]
fn carryover_off_quantizes_to_node_boundaries() {
    let mut b = DagBuilder::new();
    let a = b.add_node(Work(1));
    let c = b.add_node(Work(1));
    b.add_edge(a, c).unwrap();
    let dag = b.build().unwrap();
    let cfg = SimConfig {
        speed: Speed::integer(2).unwrap(),
        carryover: false,
        ..SimConfig::default()
    };
    assert_eq!(run_one(dag, 1, &cfg), Time(2));
}

/// Fork continuation: finishing a fork node unlocks several children; the
/// finishing processor may continue into exactly one chain of them per
/// remaining budget, the rest wait for the next tick — so a 1-processor
/// speed-3 run of fork + 2 children takes exactly one tick (3 units of
/// work, sequential continuation), while a speed-2 run takes two.
#[test]
fn fork_continuation_budget_accounting() {
    let build = || {
        let mut b = DagBuilder::new();
        let f = b.add_node(Work(1));
        let x = b.add_node(Work(1));
        let y = b.add_node(Work(1));
        b.add_edge(f, x).unwrap();
        b.add_edge(f, y).unwrap();
        b.build().unwrap()
    };
    let cfg3 = SimConfig::at_speed(Speed::integer(3).unwrap());
    assert_eq!(run_one(build(), 1, &cfg3), Time(1));
    let cfg2 = SimConfig::at_speed(Speed::integer(2).unwrap());
    assert_eq!(run_one(build(), 1, &cfg2), Time(2));
}

/// Span is a hard floor for any pick policy and any m at unit speed.
#[test]
fn span_floor_under_all_policies() {
    let mut rng = dagsched_core::Rng64::seed_from(12);
    for _ in 0..5 {
        let dag = dagsched_dag::gen::layered_random(&mut rng, 4, (1, 5), (1, 6), 0.4);
        let span = dag.span().units();
        for pick in [
            NodePick::Fifo,
            NodePick::Lifo,
            NodePick::Random(3),
            NodePick::AdversarialLowHeight,
            NodePick::CriticalPathFirst,
        ] {
            let cfg = SimConfig {
                pick,
                ..SimConfig::default()
            };
            let t = run_one(dag.clone(), 16, &cfg);
            assert!(
                t.ticks() >= span,
                "{:?}: makespan {t} below span {span}",
                cfg.pick
            );
        }
    }
}

/// Partially executed nodes keep their progress across preemption: a job
/// descheduled mid-node resumes without losing work.
#[test]
fn preempted_node_progress_is_retained() {
    // Driven directly through UnfoldState (the engine substrate).
    let mut b = DagBuilder::new();
    b.add_node(Work(10));
    let mut st = UnfoldState::new(b.build().unwrap().into_shared(), 1);
    let n = dagsched_core::NodeId(0);
    st.advance(n, 4);
    assert_eq!(st.node_remaining(n), Work(6));
    // "Preemption" = simply not advancing for a while; then resume.
    let (consumed, done) = st.advance(n, 6);
    assert_eq!(consumed, 6);
    assert!(done);
}
