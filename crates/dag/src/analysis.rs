//! Structural analysis of DAG jobs beyond work and span.
//!
//! The headline tool is the **parallelism profile**: the number of nodes
//! executing at each instant of an ideal (infinitely parallel, unit-speed)
//! execution. Its length is the span, its integral is the work, and its
//! peak is the maximum exploitable parallelism — the quantity that decides
//! whether scheduler S's fixed allotment `n_i` fits a job well.

use crate::spec::DagJobSpec;
use crate::unfold::UnfoldState;
use dagsched_core::{NodeId, Work};
use std::sync::Arc;

/// Per-tick executing-node counts of the ideal greedy execution
/// (all ready nodes advance one unit per tick).
///
/// Guarantees: `profile.len() == span` and `profile.iter().sum() == work`.
pub fn parallelism_profile(spec: &Arc<DagJobSpec>) -> Vec<u64> {
    let mut st = UnfoldState::new(spec.clone(), 1);
    let mut profile = Vec::with_capacity(spec.span().units() as usize);
    while !st.is_complete() {
        let ready: Vec<NodeId> = st.ready_iter().collect();
        profile.push(ready.len() as u64);
        for n in ready {
            st.advance(n, 1);
        }
    }
    profile
}

/// The peak of the parallelism profile — the maximum number of nodes that
/// can usefully run at once.
pub fn max_parallelism(spec: &Arc<DagJobSpec>) -> u64 {
    parallelism_profile(spec).into_iter().max().unwrap_or(0)
}

/// In-/out-degree statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeStats {
    /// Largest number of predecessors of any node.
    pub max_in: u32,
    /// Largest number of successors of any node.
    pub max_out: u32,
    /// Nodes with no predecessors.
    pub sources: u32,
    /// Nodes with no successors.
    pub sinks: u32,
}

/// Compute degree statistics.
pub fn degree_stats(spec: &DagJobSpec) -> DegreeStats {
    let n = spec.num_nodes() as u32;
    let mut max_in = 0;
    let mut max_out = 0;
    let mut sources = 0;
    let mut sinks = 0;
    for i in 0..n {
        let v = NodeId(i);
        let ind = spec.pred_count(v);
        let outd = spec.successors(v).len() as u32;
        max_in = max_in.max(ind);
        max_out = max_out.max(outd);
        if ind == 0 {
            sources += 1;
        }
        if outd == 0 {
            sinks += 1;
        }
    }
    DegreeStats {
        max_in,
        max_out,
        sources,
        sinks,
    }
}

/// Longest work-weighted path *ending* at each node (inclusive); the
/// complement of [`DagJobSpec::height`]. A node lies on a critical path
/// iff `depth(v) + height(v) − work(v) == span`.
pub fn depths(spec: &DagJobSpec) -> Vec<Work> {
    let mut depth = vec![0u64; spec.num_nodes()];
    for &v in spec.topo_order() {
        let w = spec.node_work(v).units();
        let base = depth[v.index()].max(w);
        depth[v.index()] = base;
        for &s in spec.successors(v) {
            let cand = base + spec.node_work(s).units();
            if cand > depth[s.index()] {
                depth[s.index()] = cand;
            }
        }
    }
    depth.into_iter().map(Work).collect()
}

/// Ids of all critical-path nodes.
pub fn critical_nodes(spec: &DagJobSpec) -> Vec<NodeId> {
    let d = depths(spec);
    let span = spec.span().units();
    (0..spec.num_nodes() as u32)
        .map(NodeId)
        .filter(|&v| {
            d[v.index()].units() + spec.height(v).units() - spec.node_work(v).units() == span
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn profile_invariants_for_primitives() {
        for dag in [
            gen::chain(6, 2).into_shared(),
            gen::block(9, 3).into_shared(),
            gen::diamond(4, 2).into_shared(),
            gen::fig1(4, 10, 1).into_shared(),
            gen::fork_join(3, 5, 2).into_shared(),
        ] {
            let p = parallelism_profile(&dag);
            assert_eq!(p.len() as u64, dag.span().units(), "profile length = span");
            assert_eq!(
                p.iter().sum::<u64>(),
                dag.total_work().units(),
                "profile integral = work"
            );
            assert!(p.iter().all(|&c| c >= 1), "never idle before completion");
        }
    }

    #[test]
    fn chain_profile_is_flat_one() {
        let dag = gen::chain(5, 3).into_shared();
        assert_eq!(parallelism_profile(&dag), vec![1; 15]);
        assert_eq!(max_parallelism(&dag), 1);
    }

    #[test]
    fn block_profile_is_width_then_done() {
        let dag = gen::block(7, 2).into_shared();
        assert_eq!(parallelism_profile(&dag), vec![7, 7]);
        assert_eq!(max_parallelism(&dag), 7);
    }

    #[test]
    fn fig1_profile_shape() {
        // Chain (len c) beside a block of (m-1)c unit nodes: for the first
        // tick everything is ready; block drains in one tick under infinite
        // processors, then the chain continues alone.
        let dag = gen::fig1(4, 5, 1).into_shared();
        let p = parallelism_profile(&dag);
        assert_eq!(p[0], 1 + 15); // chain head + whole block
        assert!(p[1..].iter().all(|&c| c == 1));
    }

    #[test]
    fn degree_stats_for_diamond() {
        let dag = gen::diamond(6, 2);
        let s = degree_stats(&dag);
        assert_eq!(s.max_out, 6);
        assert_eq!(s.max_in, 6);
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 1);
        let s = degree_stats(&gen::block(4, 1));
        assert_eq!(s.sources, 4);
        assert_eq!(s.sinks, 4);
        assert_eq!(s.max_in, 0);
        assert_eq!(s.max_out, 0);
    }

    #[test]
    fn depths_mirror_heights() {
        let dag = gen::fig2(4, 8, 2);
        let d = depths(&dag);
        // depth of head = its own work; depth of any block node = span.
        assert_eq!(d[0], Work(2));
        assert_eq!(d[5].units(), dag.span().units());
        // depth + height − work is at most span everywhere.
        for i in 0..dag.num_nodes() as u32 {
            let v = NodeId(i);
            let through = d[v.index()].units() + dag.height(v).units() - dag.node_work(v).units();
            assert!(through <= dag.span().units());
        }
    }

    #[test]
    fn critical_nodes_of_fig1_are_the_chain() {
        let dag = gen::fig1(4, 6, 1);
        let crit = critical_nodes(&dag);
        // The chain occupies ids 0..6.
        assert_eq!(crit, (0..6).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn critical_nodes_of_a_block_are_all() {
        let dag = gen::block(5, 2);
        assert_eq!(critical_nodes(&dag).len(), 5);
    }
}
