//! Frozen pre-CSR twins of the DAG runtime layer (the PR 5 "legacy" path).
//!
//! Before the CSR/pooling rework, a [`DagJobSpec`](crate::DagJobSpec) kept
//! its adjacency as one `Vec<NodeId>` **per node**, `sources()` re-scanned
//! and allocated on every call, and the engine built a brand-new
//! [`UnfoldState`](crate::UnfoldState) (five heap allocations) plus a
//! `busy`/`dirty` scratch pair for **every arriving job**. This module
//! freezes that memory behaviour so the `dagsched-bench` arrival-storm
//! group can time the old path against the pooled CSR path *in the same
//! process*, and so differential tests can hold the rewrite to
//! observational identity.
//!
//! The twins are deliberately faithful to the old code's allocation
//! pattern, not just its semantics: [`ReferenceDag::from_spec`] materializes
//! the nested `Vec<Vec<NodeId>>` adjacency, and [`ReferenceUnfold::new`]
//! allocates its vectors fresh and calls the allocating
//! [`ReferenceDag::sources`] — exactly what every arrival used to pay.
//! Do not "optimize" this module; it is a measurement baseline.

use crate::spec::DagJobSpec;
use dagsched_core::{NodeId, Work};

const NIL: u32 = u32::MAX;

/// The pre-CSR spec shape: per-node successor vectors plus pred counts.
#[derive(Debug, Clone)]
pub struct ReferenceDag {
    node_work: Vec<Work>,
    /// Successor adjacency, one heap allocation per node (the old layout).
    succs: Vec<Vec<NodeId>>,
    pred_count: Vec<u32>,
}

impl ReferenceDag {
    /// Re-materialize the old nested-`Vec` layout from a CSR spec.
    pub fn from_spec(spec: &DagJobSpec) -> ReferenceDag {
        let n = spec.num_nodes();
        ReferenceDag {
            node_work: spec.node_works().to_vec(),
            succs: (0..n as u32)
                .map(|v| spec.successors(NodeId(v)).to_vec())
                .collect(),
            pred_count: (0..n as u32).map(|v| spec.pred_count(NodeId(v))).collect(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_work.len()
    }

    /// Successors of a node (sorted), through the nested layout.
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        &self.succs[node.index()]
    }

    /// Sources by rescan, allocating a fresh `Vec` per call — the old
    /// `DagJobSpec::sources()` contract.
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.num_nodes() as u32)
            .map(NodeId)
            .filter(|n| self.pred_count[n.index()] == 0)
            .collect()
    }

    /// Number of edges by rescan — the old `DagJobSpec::num_edges()`.
    pub fn num_edges(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }
}

/// The pre-pooling unfold state: every field heap-allocated at construction,
/// dropped at job completion. Mirrors `UnfoldState` pre-PR5 (intrusive FIFO
/// ready list, scaled remaining work) without the `reset_from` reuse path.
#[derive(Debug, Clone)]
pub struct ReferenceUnfold {
    remaining: Vec<Work>,
    waiting_preds: Vec<u32>,
    next: Vec<u32>,
    prev: Vec<u32>,
    member: Vec<bool>,
    head: u32,
    tail: u32,
    ready_len: usize,
    completed_nodes: usize,
    remaining_total: Work,
}

impl ReferenceUnfold {
    /// Fresh execution state over the nested-`Vec` dag — five vector
    /// allocations plus the `sources()` rescan, per arrival.
    pub fn new(dag: &ReferenceDag, scale: u64) -> ReferenceUnfold {
        assert!(scale >= 1, "scale must be at least 1");
        let n = dag.num_nodes();
        let remaining: Vec<Work> = dag
            .node_work
            .iter()
            .map(|w| w.checked_scale(scale).expect("scaled work overflows u64"))
            .collect();
        let remaining_total = Work(remaining.iter().map(|w| w.units()).sum());
        let mut st = ReferenceUnfold {
            remaining,
            waiting_preds: dag.pred_count.clone(),
            next: vec![NIL; n],
            prev: vec![NIL; n],
            member: vec![false; n],
            head: NIL,
            tail: NIL,
            ready_len: 0,
            completed_nodes: 0,
            remaining_total,
        };
        for s in dag.sources() {
            st.push_back(s);
        }
        st
    }

    fn push_back(&mut self, v: NodeId) {
        let i = v.0;
        debug_assert!(!self.member[i as usize]);
        self.member[i as usize] = true;
        self.prev[i as usize] = self.tail;
        self.next[i as usize] = NIL;
        if self.tail == NIL {
            self.head = i;
        } else {
            self.next[self.tail as usize] = i;
        }
        self.tail = i;
        self.ready_len += 1;
    }

    fn remove(&mut self, v: NodeId) {
        let i = v.0;
        debug_assert!(self.member[i as usize]);
        self.member[i as usize] = false;
        let (p, n) = (self.prev[i as usize], self.next[i as usize]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.ready_len -= 1;
    }

    /// Number of ready nodes.
    pub fn ready_count(&self) -> usize {
        self.ready_len
    }

    /// First ready node in FIFO order, if any.
    pub fn first_ready(&self) -> Option<NodeId> {
        (self.head != NIL).then_some(NodeId(self.head))
    }

    /// Total remaining scaled work.
    pub fn remaining_total(&self) -> Work {
        self.remaining_total
    }

    /// All nodes complete?
    pub fn is_complete(&self) -> bool {
        self.completed_nodes == self.remaining.len()
    }

    /// Execute `budget` scaled units of a ready node; unlock successors on
    /// completion exactly as the live `UnfoldState::advance` does.
    pub fn advance(&mut self, dag: &ReferenceDag, node: NodeId, budget: u64) -> (u64, bool) {
        assert!(self.member[node.index()], "advance() on non-ready node");
        let consumed = self.remaining[node.index()].deplete(budget);
        self.remaining_total -= Work(consumed);
        if self.remaining[node.index()].is_zero() {
            self.remove(node);
            self.completed_nodes += 1;
            for &s in dag.successors(node) {
                let w = &mut self.waiting_preds[s.index()];
                debug_assert!(*w > 0);
                *w -= 1;
                if *w == 0 {
                    self.push_back(s);
                }
            }
            (consumed, true)
        } else {
            (consumed, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::unfold::UnfoldState;
    use dagsched_core::Rng64;

    #[test]
    fn reference_dag_mirrors_the_csr_spec() {
        let mut rng = Rng64::seed_from(77);
        for _ in 0..20 {
            let n = 1 + rng.gen_range(30) as u32;
            let d = gen::random_dag(&mut rng, n, 0.2, (1, 9));
            let r = ReferenceDag::from_spec(&d);
            assert_eq!(r.num_nodes(), d.num_nodes());
            assert_eq!(r.num_edges(), d.num_edges());
            assert_eq!(r.sources(), d.sources());
            for v in 0..d.num_nodes() as u32 {
                assert_eq!(r.successors(NodeId(v)), d.successors(NodeId(v)));
            }
        }
    }

    #[test]
    fn reference_unfold_tracks_the_live_unfold_to_completion() {
        let mut rng = Rng64::seed_from(78);
        for _ in 0..20 {
            let n = 1 + rng.gen_range(25) as u32;
            let d = gen::random_dag(&mut rng, n, 0.25, (1, 7)).into_shared();
            let r = ReferenceDag::from_spec(&d);
            let scale = 1 + rng.gen_range(3);
            let mut legacy = ReferenceUnfold::new(&r, scale);
            let mut live = UnfoldState::new(d.clone(), scale);
            while !live.is_complete() {
                assert_eq!(legacy.ready_count(), live.ready_count());
                assert_eq!(legacy.remaining_total(), live.remaining_total());
                let a = legacy.first_ready().expect("ready while incomplete");
                let b = live.ready_prefix(1)[0];
                assert_eq!(a, b, "FIFO heads diverge");
                let budget = 1 + rng.gen_range(6);
                assert_eq!(legacy.advance(&r, a, budget), live.advance(b, budget));
            }
            assert!(legacy.is_complete());
            assert_eq!(legacy.remaining_total(), Work::ZERO);
        }
    }
}
