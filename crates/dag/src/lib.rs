//! # dagsched-dag
//!
//! The parallel-job model of the paper: each job is an independent **DAG** of
//! sequential nodes. A node is *ready* once all predecessors completed; the
//! job is *complete* once every node finished. Two parameters govern the
//! theory:
//!
//! * total **work** `W` — the sum of node processing times (execution time on
//!   one processor), and
//! * **span** (critical-path length) `L` — the longest path, weighted by node
//!   processing time (execution time on infinitely many processors).
//!
//! This crate provides:
//!
//! * [`DagJobSpec`] / [`DagBuilder`] — validated, immutable DAG descriptions
//!   with precomputed `W`, `L`, topological order and node *heights*
//!   (longest-path-to-sink, used by clairvoyant/adversarial policies);
//! * [`UnfoldState`] — the runtime view used by the execution engine: node
//!   progress, the dynamically unfolding ready set (the **only** structural
//!   information a semi-non-clairvoyant scheduler may observe), and
//!   remaining-work/span queries;
//! * [`gen`] — generators for the shapes used in the experiments, including
//!   the adversarial constructions of the paper's Figures 1 and 2;
//! * [`hpc`] — task graphs of real parallel kernels (tiled Cholesky/LU,
//!   stencils, wavefronts) for the E10 benchmark experiment.

#![warn(missing_docs)]

pub mod analysis;
pub mod dot;
pub mod gen;
pub mod hpc;
pub mod reference;
pub mod spec;
pub mod unfold;

pub use spec::{DagBuilder, DagJobSpec};
pub use unfold::UnfoldState;
