//! Runtime unfolding of a DAG job.
//!
//! The semi-non-clairvoyant model lets a scheduler observe, at any instant,
//! only the job's *ready* nodes (plus `W`, `L` from arrival). [`UnfoldState`]
//! is that runtime view: it tracks per-node remaining work, maintains the
//! ready set as the DAG unfolds, and answers the aggregate queries
//! (remaining work/span) that *clairvoyant* components — the adversarial
//! node picker and the offline bounds — are allowed to use.
//!
//! Work here is in **engine-scaled units**: the engine multiplies node works
//! by [`Speed::work_scale`](dagsched_core::Speed::work_scale) so rational
//! speeds stay exact; [`UnfoldState::new`] applies that scale.

use crate::spec::DagJobSpec;
use dagsched_core::{NodeId, Work};
use std::sync::Arc;

const NIL: u32 = u32::MAX;

/// An intrusive doubly-linked list over node ids, preserving insertion (FIFO)
/// order with O(1) insert/remove — the ready set can be huge (a parallel
/// block has `W − L` simultaneously-ready nodes) and nodes leave it from
/// arbitrary positions as they complete.
#[derive(Debug, Clone)]
struct ReadyList {
    next: Vec<u32>,
    prev: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    /// Membership flags (a node enters at most once, but guard misuse).
    member: Vec<bool>,
}

impl ReadyList {
    fn new(capacity: usize) -> ReadyList {
        ReadyList {
            next: vec![NIL; capacity],
            prev: vec![NIL; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
            member: vec![false; capacity],
        }
    }

    /// Restore the empty state for a (possibly different) node count,
    /// reusing the link/membership vectors. `clear` + `resize` never
    /// shrinks capacity, so a pooled list reaches its high-water mark once
    /// and then resets allocation-free.
    fn reset(&mut self, capacity: usize) {
        self.next.clear();
        self.next.resize(capacity, NIL);
        self.prev.clear();
        self.prev.resize(capacity, NIL);
        self.member.clear();
        self.member.resize(capacity, false);
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }

    fn push_back(&mut self, v: NodeId) {
        let i = v.0;
        debug_assert!(!self.member[i as usize], "node already in ready list");
        self.member[i as usize] = true;
        self.prev[i as usize] = self.tail;
        self.next[i as usize] = NIL;
        if self.tail == NIL {
            self.head = i;
        } else {
            self.next[self.tail as usize] = i;
        }
        self.tail = i;
        self.len += 1;
    }

    fn remove(&mut self, v: NodeId) {
        let i = v.0;
        debug_assert!(self.member[i as usize], "node not in ready list");
        self.member[i as usize] = false;
        let (p, n) = (self.prev[i as usize], self.next[i as usize]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.len -= 1;
    }

    fn contains(&self, v: NodeId) -> bool {
        self.member[v.index()]
    }

    fn iter(&self) -> ReadyIter<'_> {
        ReadyIter {
            list: self,
            cur: self.head,
        }
    }
}

struct ReadyIter<'a> {
    list: &'a ReadyList,
    cur: u32,
}

impl Iterator for ReadyIter<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        if self.cur == NIL {
            return None;
        }
        let v = NodeId(self.cur);
        self.cur = self.list.next[self.cur as usize];
        Some(v)
    }
}

/// Mutable execution state of one DAG job.
#[derive(Debug, Clone)]
pub struct UnfoldState {
    spec: Arc<DagJobSpec>,
    /// Remaining scaled work per node.
    remaining: Vec<Work>,
    /// Unfinished-predecessor counts.
    waiting_preds: Vec<u32>,
    ready: ReadyList,
    completed_nodes: usize,
    /// Total remaining scaled work across all nodes.
    remaining_total: Work,
    scale: u64,
}

impl UnfoldState {
    /// Start executing `spec` with node works scaled by `scale`
    /// (the engine passes `speed.work_scale()`; use 1 for unit speed).
    ///
    /// # Panics
    /// If any scaled work overflows `u64`.
    pub fn new(spec: Arc<DagJobSpec>, scale: u64) -> UnfoldState {
        let mut st = UnfoldState {
            spec: spec.clone(),
            remaining: Vec::new(),
            waiting_preds: Vec::new(),
            ready: ReadyList::new(0),
            completed_nodes: 0,
            remaining_total: Work::ZERO,
            scale: 1,
        };
        st.reset_from(spec, scale);
        st
    }

    /// Reinitialize this state to execute `spec` at `scale`, exactly as
    /// [`new`](Self::new) would — but reusing the `remaining`,
    /// `waiting_preds` and ready-list vectors. The engine's job pool calls
    /// this on recycled slots so arrival storms are allocation-free once
    /// every buffer has reached its high-water node count.
    ///
    /// Observational identity with a fresh state is pinned by
    /// `tests/pooled_reset.rs`; determinism is unaffected because every
    /// observable field (per-node remaining work, waiting-predecessor
    /// counts, the FIFO ready order seeded from `spec.sources()` in id
    /// order, counters) is overwritten, never carried over.
    ///
    /// # Panics
    /// If any scaled work overflows `u64`.
    pub fn reset_from(&mut self, spec: Arc<DagJobSpec>, scale: u64) {
        assert!(scale >= 1, "scale must be at least 1");
        let n = spec.num_nodes();
        self.remaining.clear();
        self.remaining.extend(
            spec.node_works()
                .iter()
                .map(|w| w.checked_scale(scale).expect("scaled work overflows u64")),
        );
        self.remaining_total = Work(self.remaining.iter().map(|w| w.units()).sum());
        self.waiting_preds.clear();
        self.waiting_preds
            .extend((0..n as u32).map(|i| spec.pred_count(NodeId(i))));
        self.ready.reset(n);
        for &s in spec.sources() {
            self.ready.push_back(s);
        }
        self.completed_nodes = 0;
        self.scale = scale;
        self.spec = spec;
    }

    /// The immutable spec this state executes.
    #[inline]
    pub fn spec(&self) -> &Arc<DagJobSpec> {
        &self.spec
    }

    /// The work scale factor applied at construction.
    #[inline]
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Number of currently ready (executable, unfinished) nodes.
    #[inline]
    pub fn ready_count(&self) -> usize {
        self.ready.len
    }

    /// Iterate ready nodes in FIFO (readiness) order.
    pub fn ready_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ready.iter()
    }

    /// First `k` ready nodes in FIFO order (fewer if not that many).
    pub fn ready_prefix(&self, k: usize) -> Vec<NodeId> {
        self.ready.iter().take(k).collect()
    }

    /// Buffer-reusing variant of [`ready_prefix`](Self::ready_prefix):
    /// clear `out` and fill it with the first `k` ready nodes in FIFO
    /// order. Per-event callers hoist `out` and pay no allocation once the
    /// buffer has grown to its high-water mark.
    pub fn ready_prefix_into(&self, k: usize, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.ready.iter().take(k));
    }

    /// Is the node currently ready?
    #[inline]
    pub fn is_ready(&self, node: NodeId) -> bool {
        self.ready.contains(node)
    }

    /// Remaining scaled work of one node.
    #[inline]
    pub fn node_remaining(&self, node: NodeId) -> Work {
        self.remaining[node.index()]
    }

    /// Total remaining scaled work of the job.
    #[inline]
    pub fn remaining_total(&self) -> Work {
        self.remaining_total
    }

    /// All nodes complete?
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.completed_nodes == self.spec.num_nodes()
    }

    /// Number of completed nodes.
    #[inline]
    pub fn completed_nodes(&self) -> usize {
        self.completed_nodes
    }

    /// Execute `budget` scaled work units of a **ready** node.
    ///
    /// Returns `(consumed, completed)`. On completion the node leaves the
    /// ready set and each successor whose predecessors are now all complete
    /// joins it (in successor-id order, keeping unfolding deterministic).
    ///
    /// # Panics
    /// If `node` is not ready (engine bug: scheduling a non-ready or
    /// finished node would violate the model).
    pub fn advance(&mut self, node: NodeId, budget: u64) -> (u64, bool) {
        assert!(
            self.ready.contains(node),
            "advance() on non-ready node {node}"
        );
        let consumed = self.remaining[node.index()].deplete(budget);
        self.remaining_total -= Work(consumed);
        if self.remaining[node.index()].is_zero() {
            self.ready.remove(node);
            self.completed_nodes += 1;
            for &s in self.spec.successors(node) {
                let w = &mut self.waiting_preds[s.index()];
                debug_assert!(*w > 0);
                *w -= 1;
                if *w == 0 {
                    self.ready.push_back(s);
                }
            }
            (consumed, true)
        } else {
            (consumed, false)
        }
    }

    /// Execute `budget` scaled work units of a **ready** node that is known
    /// not to complete — the event-driven engine's bulk step.
    ///
    /// The fast-forward path computes a window of `s` ticks in which no
    /// claimed node finishes, then drains `s × units_per_tick` from each
    /// claimed node in one call instead of `s` [`advance`](Self::advance)
    /// calls. Because the node cannot complete, no ready-set maintenance or
    /// successor unlocking happens here, which is what makes the call O(1).
    ///
    /// # Panics
    /// If `node` is not ready, or if `budget` would complete the node
    /// (completions must go through [`advance`](Self::advance) so successors
    /// unlock and the ready list stays consistent).
    pub fn advance_bulk(&mut self, node: NodeId, budget: u64) {
        assert!(
            self.ready.contains(node),
            "advance_bulk() on non-ready node {node}"
        );
        let rem = self.remaining[node.index()].units();
        assert!(
            budget < rem,
            "advance_bulk() budget {budget} would complete node {node} (remaining {rem})"
        );
        let consumed = self.remaining[node.index()].deplete(budget);
        debug_assert_eq!(consumed, budget);
        self.remaining_total -= Work(consumed);
    }

    /// Remaining span: the work-weighted longest path over *unfinished* work,
    /// in scaled units. Counts partially-executed nodes at their remaining
    /// work. O(V + E); for clairvoyant components and tests only — a
    /// semi-non-clairvoyant scheduler must not call this.
    pub fn remaining_span(&self) -> Work {
        let mut best = vec![0u64; self.spec.num_nodes()];
        let mut span = 0u64;
        for &v in self.spec.topo_order().iter().rev() {
            let tail = self
                .spec
                .successors(v)
                .iter()
                .map(|s| best[s.index()])
                .max();
            let h = self.remaining[v.index()].units() + tail.unwrap_or(0);
            best[v.index()] = h;
            span = span.max(h);
        }
        Work(span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DagBuilder;

    fn chain(lens: &[u64]) -> Arc<DagJobSpec> {
        let mut b = DagBuilder::new();
        let ids: Vec<_> = lens.iter().map(|&w| b.add_node(Work(w))).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap().into_shared()
    }

    fn diamond() -> Arc<DagJobSpec> {
        let mut b = DagBuilder::new();
        let s = b.add_node(Work(1));
        let a = b.add_node(Work(4));
        let c = b.add_node(Work(2));
        let t = b.add_node(Work(1));
        b.add_edge(s, a).unwrap();
        b.add_edge(s, c).unwrap();
        b.add_edge(a, t).unwrap();
        b.add_edge(c, t).unwrap();
        b.build().unwrap().into_shared()
    }

    #[test]
    fn initial_state_exposes_sources_only() {
        let st = UnfoldState::new(diamond(), 1);
        assert_eq!(st.ready_count(), 1);
        assert_eq!(st.ready_prefix(10), vec![NodeId(0)]);
        assert!(!st.is_complete());
        assert_eq!(st.remaining_total(), Work(8));
        assert_eq!(st.remaining_span(), Work(6));
    }

    #[test]
    fn unfolds_diamond_and_completes() {
        let mut st = UnfoldState::new(diamond(), 1);
        let (c, done) = st.advance(NodeId(0), 5);
        assert_eq!((c, done), (1, true), "consumes only the node's work");
        // Both branches become ready, in successor order.
        assert_eq!(st.ready_prefix(10), vec![NodeId(1), NodeId(2)]);
        assert!(st.is_ready(NodeId(2)));
        // Partially execute the long branch: stays ready.
        let (c, done) = st.advance(NodeId(1), 3);
        assert_eq!((c, done), (3, false));
        assert!(st.is_ready(NodeId(1)));
        // Finish the short branch; sink not ready yet (one pred left).
        st.advance(NodeId(2), 2);
        assert!(!st.is_ready(NodeId(3)));
        // Finish the long branch; sink becomes ready.
        let (_, done) = st.advance(NodeId(1), 1);
        assert!(done);
        assert_eq!(st.ready_prefix(10), vec![NodeId(3)]);
        st.advance(NodeId(3), 1);
        assert!(st.is_complete());
        assert_eq!(st.ready_count(), 0);
        assert_eq!(st.remaining_total(), Work::ZERO);
        assert_eq!(st.remaining_span(), Work::ZERO);
        assert_eq!(st.completed_nodes(), 4);
    }

    #[test]
    #[should_panic(expected = "non-ready")]
    fn advancing_non_ready_node_panics() {
        let mut st = UnfoldState::new(diamond(), 1);
        st.advance(NodeId(3), 1);
    }

    #[test]
    fn advance_bulk_drains_without_completing() {
        let mut st = UnfoldState::new(diamond(), 3);
        // Node 0 has 3 scaled units; drain 2 in bulk.
        st.advance_bulk(NodeId(0), 2);
        assert_eq!(st.node_remaining(NodeId(0)), Work(1));
        assert_eq!(st.remaining_total(), Work(24 - 2));
        assert!(st.is_ready(NodeId(0)), "bulk progress keeps the node ready");
        assert_eq!(st.completed_nodes(), 0);
        // Finishing the last unit through advance() unlocks successors.
        let (c, done) = st.advance(NodeId(0), 1);
        assert_eq!((c, done), (1, true));
        assert_eq!(st.ready_prefix(10), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    #[should_panic(expected = "would complete")]
    fn advance_bulk_rejects_completing_budget() {
        let mut st = UnfoldState::new(diamond(), 1);
        st.advance_bulk(NodeId(0), 1);
    }

    #[test]
    #[should_panic(expected = "non-ready")]
    fn advance_bulk_rejects_non_ready_node() {
        let mut st = UnfoldState::new(diamond(), 1);
        st.advance_bulk(NodeId(3), 1);
    }

    #[test]
    fn advance_bulk_matches_repeated_advance() {
        let mut bulk = UnfoldState::new(chain(&[100, 7]), 2);
        let mut tick = UnfoldState::new(chain(&[100, 7]), 2);
        bulk.advance_bulk(NodeId(0), 2 * 60);
        for _ in 0..60 {
            tick.advance(NodeId(0), 2);
        }
        assert_eq!(
            bulk.node_remaining(NodeId(0)),
            tick.node_remaining(NodeId(0))
        );
        assert_eq!(bulk.remaining_total(), tick.remaining_total());
        assert_eq!(bulk.remaining_span(), tick.remaining_span());
    }

    #[test]
    fn scaling_multiplies_work() {
        let st = UnfoldState::new(chain(&[3, 4]), 5);
        assert_eq!(st.remaining_total(), Work(35));
        assert_eq!(st.node_remaining(NodeId(0)), Work(15));
        assert_eq!(st.remaining_span(), Work(35));
        assert_eq!(st.scale(), 5);
    }

    #[test]
    fn chain_progress_is_sequential() {
        let mut st = UnfoldState::new(chain(&[2, 2, 2]), 1);
        assert_eq!(st.ready_count(), 1);
        st.advance(NodeId(0), 2);
        assert_eq!(st.ready_prefix(3), vec![NodeId(1)]);
        st.advance(NodeId(1), 2);
        st.advance(NodeId(2), 2);
        assert!(st.is_complete());
    }

    #[test]
    fn remaining_span_shrinks_with_critical_progress() {
        let mut st = UnfoldState::new(diamond(), 1);
        st.advance(NodeId(0), 1);
        assert_eq!(st.remaining_span(), Work(5)); // 4 + 1 through the long branch
        st.advance(NodeId(1), 3);
        // 1 left on a (+1 sink = 2), but branch c is untouched: 2 + 1 = 3.
        assert_eq!(st.remaining_span(), Work(3));
        st.advance(NodeId(2), 2); // finish c: critical path now through a
        assert_eq!(st.remaining_span(), Work(2));
    }

    #[test]
    fn ready_list_fifo_order_with_interleaved_removal() {
        // Block of 5 independent nodes: ready in id order.
        let mut b = DagBuilder::new();
        for _ in 0..5 {
            b.add_node(Work(2));
        }
        let mut st = UnfoldState::new(b.build().unwrap().into_shared(), 1);
        assert_eq!(st.ready_prefix(5), (0..5).map(NodeId).collect::<Vec<_>>());
        // Complete the middle one; order of the rest is preserved.
        st.advance(NodeId(2), 2);
        assert_eq!(
            st.ready_prefix(5),
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]
        );
        // Partial progress does not reorder.
        st.advance(NodeId(0), 1);
        assert_eq!(st.ready_prefix(2), vec![NodeId(0), NodeId(1)]);
        // Complete head and tail.
        st.advance(NodeId(0), 1);
        st.advance(NodeId(4), 2);
        assert_eq!(st.ready_prefix(5), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn ready_prefix_into_matches_and_reuses_buffer() {
        let mut b = DagBuilder::new();
        for _ in 0..5 {
            b.add_node(Work(1));
        }
        let st = UnfoldState::new(b.build().unwrap().into_shared(), 1);
        let mut buf = vec![NodeId(42)]; // stale content must be replaced
        st.ready_prefix_into(3, &mut buf);
        assert_eq!(buf, st.ready_prefix(3));
        let ptr = buf.as_ptr();
        st.ready_prefix_into(2, &mut buf);
        assert_eq!(buf, st.ready_prefix(2));
        assert_eq!(buf.as_ptr(), ptr, "no reallocation on reuse");
        st.ready_prefix_into(0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn reset_from_matches_fresh_and_reuses_buffers() {
        // Dirty a state on one spec, reset onto a different (smaller) one:
        // every observable must equal a fresh state's, with no reallocation
        // once capacities cover the new spec.
        let mut pooled = UnfoldState::new(diamond(), 3);
        pooled.advance(NodeId(0), 3);
        pooled.advance(NodeId(1), 5);
        let small = chain(&[4, 2]);
        let remaining_ptr = pooled.remaining.as_ptr();
        pooled.reset_from(small.clone(), 2);
        let mut fresh = UnfoldState::new(small, 2);
        assert_eq!(pooled.remaining, fresh.remaining);
        assert_eq!(pooled.waiting_preds, fresh.waiting_preds);
        assert_eq!(pooled.remaining_total(), fresh.remaining_total());
        assert_eq!(pooled.scale(), fresh.scale());
        assert_eq!(pooled.completed_nodes(), 0);
        assert_eq!(
            pooled.ready_prefix(16),
            fresh.ready_prefix(16),
            "FIFO ready order must match a fresh unfold"
        );
        assert_eq!(
            pooled.remaining.as_ptr(),
            remaining_ptr,
            "reset within capacity must not reallocate"
        );
        // The reset state unfolds exactly like the fresh one.
        while !fresh.is_complete() {
            let a = pooled.ready_prefix(1)[0];
            let b = fresh.ready_prefix(1)[0];
            assert_eq!(a, b);
            assert_eq!(pooled.advance(a, 3), fresh.advance(b, 3));
        }
        assert!(pooled.is_complete());
    }

    #[test]
    fn work_conservation_across_unfolding() {
        let mut st = UnfoldState::new(diamond(), 3);
        let total = st.remaining_total().units();
        let mut consumed = 0;
        // Drive to completion with odd-sized budgets.
        while !st.is_complete() {
            let node = st.ready_prefix(1)[0];
            let (c, _) = st.advance(node, 5);
            consumed += c;
        }
        assert_eq!(consumed, total, "every scaled unit accounted exactly once");
    }
}
