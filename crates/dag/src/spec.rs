//! Immutable, validated DAG job descriptions.

use dagsched_core::{NodeId, Result, SchedError, Work};
use std::sync::Arc;

/// A validated DAG job: node processing times plus precedence edges, with the
/// quantities the theory needs precomputed at construction.
///
/// Immutable by design — the engine shares one spec (via [`Arc`]) across the
/// algorithm run, the optimal-bound computation, and any number of replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagJobSpec {
    node_work: Vec<Work>,
    /// Successor adjacency in compressed-sparse-row form: node `v`'s
    /// successors are `succ_flat[succ_off[v] .. succ_off[v+1]]`, sorted per
    /// node. One flat allocation instead of one `Vec` per node keeps every
    /// successor walk on a single contiguous cache line stream.
    succ_flat: Vec<NodeId>,
    /// CSR row offsets, length `n + 1`.
    succ_off: Vec<u32>,
    /// Number of predecessors per node.
    pred_count: Vec<u32>,
    /// Nodes with no predecessors, in id order (the initial ready set).
    sources: Vec<NodeId>,
    /// Total work `W` = Σ node works.
    total_work: Work,
    /// Critical-path length `L` (work-weighted longest path).
    span: Work,
    /// A topological order of all nodes.
    topo: Vec<NodeId>,
    /// `height[v]` = work-weighted longest path starting at `v` (inclusive).
    /// A node is on a critical path iff its *depth + height* equals `L`;
    /// the adversarial node-pick policy prefers low heights.
    heights: Vec<Work>,
}

impl DagJobSpec {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_work.len()
    }

    /// Processing time of one node.
    #[inline]
    pub fn node_work(&self, node: NodeId) -> Work {
        self.node_work[node.index()]
    }

    /// All node processing times, indexed by [`NodeId`].
    #[inline]
    pub fn node_works(&self) -> &[Work] {
        &self.node_work
    }

    /// Total work `W`.
    #[inline]
    pub fn total_work(&self) -> Work {
        self.total_work
    }

    /// Critical-path length (span) `L`.
    #[inline]
    pub fn span(&self) -> Work {
        self.span
    }

    /// Average parallelism `W / L` (≥ 1 for any non-empty DAG).
    pub fn parallelism(&self) -> f64 {
        self.total_work.as_f64() / self.span.as_f64()
    }

    /// Successors of a node (sorted).
    #[inline]
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.succ_flat[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Number of predecessors of a node.
    #[inline]
    pub fn pred_count(&self, node: NodeId) -> u32 {
        self.pred_count[node.index()]
    }

    /// A topological order over all nodes.
    #[inline]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Longest work-weighted path starting at `node` (inclusive of its work).
    #[inline]
    pub fn height(&self, node: NodeId) -> Work {
        self.heights[node.index()]
    }

    /// Nodes with no predecessors, in id order (the initial ready set).
    /// Precomputed at [`build`](DagBuilder::build) time — callers on the
    /// arrival hot path (e.g. `UnfoldState::reset_from`) get a slice, not a
    /// fresh allocation.
    #[inline]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Number of edges (the CSR flat length; no rescan).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.succ_flat.len()
    }

    /// Wrap in an [`Arc`] for sharing with the engine.
    pub fn into_shared(self) -> Arc<DagJobSpec> {
        Arc::new(self)
    }
}

/// Incremental construction of a [`DagJobSpec`].
///
/// ```
/// use dagsched_dag::DagBuilder;
/// use dagsched_core::Work;
///
/// let mut b = DagBuilder::new();
/// let src = b.add_node(Work(2));
/// let mid = b.add_node(Work(3));
/// let snk = b.add_node(Work(1));
/// b.add_edge(src, mid).unwrap();
/// b.add_edge(mid, snk).unwrap();
/// let dag = b.build().unwrap();
/// assert_eq!(dag.total_work(), Work(6));
/// assert_eq!(dag.span(), Work(6)); // a pure chain: span == work
/// ```
#[derive(Debug, Default, Clone)]
pub struct DagBuilder {
    node_work: Vec<Work>,
    edges: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// An empty builder.
    pub fn new() -> DagBuilder {
        DagBuilder::default()
    }

    /// A builder with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> DagBuilder {
        DagBuilder {
            node_work: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Add a node with the given processing time and return its id.
    pub fn add_node(&mut self, work: Work) -> NodeId {
        let id = NodeId(self.node_work.len() as u32);
        self.node_work.push(work);
        id
    }

    /// Add a precedence edge `from → to` (`to` cannot start before `from`
    /// completes).
    ///
    /// # Errors
    /// Rejects self-loops and ids that have not been created yet. Duplicate
    /// edges and cycles are detected at [`build`](Self::build) time.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        let n = self.node_work.len() as u32;
        if from.0 >= n || to.0 >= n {
            return Err(SchedError::InvalidDag(format!(
                "edge {from}->{to} references a node >= {n}"
            )));
        }
        if from == to {
            return Err(SchedError::InvalidDag(format!("self-loop on {from}")));
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Current number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_work.len()
    }

    /// Validate and finalize.
    ///
    /// # Errors
    /// * empty DAG,
    /// * a node with zero work (the model's nodes are non-empty instruction
    ///   sequences; zero-work nodes would make "processor steps" ill-defined),
    /// * duplicate edges,
    /// * cycles (reported with a witness node).
    pub fn build(self) -> Result<DagJobSpec> {
        let n = self.node_work.len();
        if n == 0 {
            return Err(SchedError::InvalidDag(
                "a job needs at least one node".into(),
            ));
        }
        if let Some(i) = self.node_work.iter().position(|w| w.is_zero()) {
            return Err(SchedError::InvalidDag(format!("node n{i} has zero work")));
        }
        if u32::try_from(self.edges.len()).is_err() {
            return Err(SchedError::InvalidDag(format!(
                "too many edges for CSR offsets: {}",
                self.edges.len()
            )));
        }
        // CSR adjacency: sorting the edge list by (from, to) puts each
        // node's successors contiguously (and sorted), so the flat array and
        // the row offsets fall out of one pass.
        let mut sorted = self.edges;
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(SchedError::InvalidDag("duplicate edge".into()));
        }
        let mut succ_flat: Vec<NodeId> = Vec::with_capacity(sorted.len());
        let mut succ_off: Vec<u32> = vec![0; n + 1];
        let mut pred_count = vec![0u32; n];
        for &(from, to) in &sorted {
            succ_off[from.index() + 1] += 1;
            pred_count[to.index()] += 1;
            succ_flat.push(to);
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
        }
        let succs_of = |v: NodeId| -> &[NodeId] {
            &succ_flat[succ_off[v.index()] as usize..succ_off[v.index() + 1] as usize]
        };
        let sources: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|v| pred_count[v.index()] == 0)
            .collect();

        // Kahn's algorithm: topological order + cycle detection.
        let mut indeg = pred_count.clone();
        let mut queue: Vec<NodeId> = sources.clone();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            topo.push(v);
            for &s in succs_of(v) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if topo.len() != n {
            let witness = (0..n).find(|&i| indeg[i] > 0).unwrap();
            return Err(SchedError::InvalidDag(format!(
                "cycle detected (through n{witness})"
            )));
        }

        // Heights (longest path from node, inclusive) in reverse topo order;
        // span = max height. u64 work sums cannot overflow for realistic
        // instances but we use checked adds to fail loudly.
        let mut heights = vec![Work::ZERO; n];
        for &v in topo.iter().rev() {
            let best_succ = succs_of(v)
                .iter()
                .map(|s| heights[s.index()].units())
                .max()
                .unwrap_or(0);
            let h = self.node_work[v.index()]
                .units()
                .checked_add(best_succ)
                .ok_or_else(|| SchedError::InvalidDag("work overflow on path".into()))?;
            heights[v.index()] = Work(h);
        }
        let span = Work(heights.iter().map(|h| h.units()).max().unwrap_or(0));
        let total = self
            .node_work
            .iter()
            .try_fold(0u64, |acc, w| acc.checked_add(w.units()))
            .ok_or_else(|| SchedError::InvalidDag("total work overflow".into()))?;

        Ok(DagJobSpec {
            node_work: self.node_work,
            succ_flat,
            succ_off,
            pred_count,
            sources,
            total_work: Work(total),
            span,
            topo,
            heights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(b: &mut DagBuilder, w: u64) -> NodeId {
        b.add_node(Work(w))
    }

    #[test]
    fn single_node() {
        let mut b = DagBuilder::new();
        node(&mut b, 5);
        let d = b.build().unwrap();
        assert_eq!(d.num_nodes(), 1);
        assert_eq!(d.total_work(), Work(5));
        assert_eq!(d.span(), Work(5));
        assert_eq!(d.parallelism(), 1.0);
        assert_eq!(d.sources(), vec![NodeId(0)]);
        assert_eq!(d.num_edges(), 0);
    }

    #[test]
    fn chain_span_equals_work() {
        let mut b = DagBuilder::new();
        let ids: Vec<_> = (0..4).map(|_| node(&mut b, 3)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let d = b.build().unwrap();
        assert_eq!(d.total_work(), Work(12));
        assert_eq!(d.span(), Work(12));
        assert_eq!(d.height(ids[0]), Work(12));
        assert_eq!(d.height(ids[3]), Work(3));
        assert_eq!(d.topo_order(), &ids[..]);
    }

    #[test]
    fn independent_block_span_is_max_node() {
        let mut b = DagBuilder::new();
        node(&mut b, 2);
        node(&mut b, 7);
        node(&mut b, 3);
        let d = b.build().unwrap();
        assert_eq!(d.total_work(), Work(12));
        assert_eq!(d.span(), Work(7));
        assert!((d.parallelism() - 12.0 / 7.0).abs() < 1e-12);
        assert_eq!(d.sources().len(), 3);
    }

    #[test]
    fn diamond_heights_and_span() {
        // s(1) -> a(4), b(2) -> t(1): span = 1+4+1 = 6.
        let mut b = DagBuilder::new();
        let s = node(&mut b, 1);
        let a = node(&mut b, 4);
        let bb = node(&mut b, 2);
        let t = node(&mut b, 1);
        for (f, g) in [(s, a), (s, bb), (a, t), (bb, t)] {
            b.add_edge(f, g).unwrap();
        }
        let d = b.build().unwrap();
        assert_eq!(d.span(), Work(6));
        assert_eq!(d.height(s), Work(6));
        assert_eq!(d.height(a), Work(5));
        assert_eq!(d.height(bb), Work(3));
        assert_eq!(d.height(t), Work(1));
        assert_eq!(d.pred_count(t), 2);
        assert_eq!(d.successors(s), &[a, bb]);
    }

    #[test]
    fn rejects_empty_zero_work_self_loop_dup_and_oob() {
        assert!(DagBuilder::new().build().is_err());

        let mut b = DagBuilder::new();
        b.add_node(Work(0));
        assert!(b.build().is_err());

        let mut b = DagBuilder::new();
        let a = node(&mut b, 1);
        assert!(b.add_edge(a, a).is_err());
        assert!(b.add_edge(a, NodeId(5)).is_err());

        let mut b = DagBuilder::new();
        let a = node(&mut b, 1);
        let c = node(&mut b, 1);
        b.add_edge(a, c).unwrap();
        b.add_edge(a, c).unwrap();
        assert!(matches!(b.build(), Err(SchedError::InvalidDag(m)) if m.contains("duplicate")));
    }

    #[test]
    fn rejects_cycles() {
        let mut b = DagBuilder::new();
        let x = node(&mut b, 1);
        let y = node(&mut b, 1);
        let z = node(&mut b, 1);
        b.add_edge(x, y).unwrap();
        b.add_edge(y, z).unwrap();
        b.add_edge(z, x).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, SchedError::InvalidDag(m) if m.contains("cycle")));
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = DagBuilder::new();
        let ids: Vec<_> = (0..6).map(|_| node(&mut b, 1)).collect();
        // Edges chosen so id order != topo necessity: 5 -> 0, 3 -> 1.
        b.add_edge(ids[5], ids[0]).unwrap();
        b.add_edge(ids[3], ids[1]).unwrap();
        let d = b.build().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, v) in d.topo_order().iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        assert!(pos[5] < pos[0]);
        assert!(pos[3] < pos[1]);
    }

    #[test]
    fn precomputed_sources_and_edges_match_brute_force() {
        use dagsched_core::Rng64;
        // The build()-time fields must agree with a from-scratch recount on
        // random DAGs: sources = nodes with pred_count 0 in id order,
        // num_edges = Σ successors(v).len() = edges added to the builder.
        let mut rng = Rng64::seed_from(0xC5A0);
        for _ in 0..50 {
            let n = 1 + rng.gen_range(40) as u32;
            let mut b = DagBuilder::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|_| b.add_node(Work(1 + rng.gen_range(9))))
                .collect();
            let mut added = 0usize;
            for i in 0..n as usize {
                for j in (i + 1)..n as usize {
                    if rng.gen_bool(0.15) {
                        b.add_edge(ids[i], ids[j]).unwrap();
                        added += 1;
                    }
                }
            }
            let d = b.build().unwrap();
            let brute_sources: Vec<NodeId> = (0..n)
                .map(NodeId)
                .filter(|v| d.pred_count(*v) == 0)
                .collect();
            assert_eq!(d.sources(), brute_sources);
            let brute_edges: usize = (0..n).map(|v| d.successors(NodeId(v)).len()).sum();
            assert_eq!(d.num_edges(), brute_edges);
            assert_eq!(d.num_edges(), added);
            // CSR successor slices are sorted per node and consistent with
            // pred counts.
            let mut pred_recount = vec![0u32; n as usize];
            for v in 0..n {
                let succ = d.successors(NodeId(v));
                assert!(succ.windows(2).all(|w| w[0] < w[1]), "unsorted row {v}");
                for s in succ {
                    pred_recount[s.index()] += 1;
                }
            }
            for v in 0..n {
                assert_eq!(pred_recount[v as usize], d.pred_count(NodeId(v)));
            }
        }
    }

    #[test]
    fn with_capacity_builds_same_result() {
        let mut b = DagBuilder::with_capacity(2, 1);
        let x = node(&mut b, 1);
        let y = node(&mut b, 2);
        b.add_edge(x, y).unwrap();
        let d = b.build().unwrap();
        assert_eq!(d.span(), Work(3));
    }
}
