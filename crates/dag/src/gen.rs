//! DAG generators: the paper's adversarial constructions plus the synthetic
//! families the experiments mix.
//!
//! All generators produce validated [`DagJobSpec`]s. Shapes:
//!
//! * [`single`], [`chain`], [`block`], [`diamond`] — degenerate building
//!   blocks covering the parallelism extremes (`W/L = 1` … `W/L = W`);
//! * [`fig1`] — Figure 1: a chain of length `L = W/m` **in parallel with** an
//!   independent block of `W − L` work. A clairvoyant scheduler finishes in
//!   `W/m`; an unlucky semi-non-clairvoyant one needs `(W−L)/m + L`, which
//!   forces speed augmentation `2 − 1/m` (Theorem 1);
//! * [`fig2`] — Figure 2: a chain **followed by** a block, showing even
//!   clairvoyant schedulers need `≈ (W−L)/m + L`, so demanding deadlines
//!   `D ≥ (W−L)/m + L` is reasonable;
//! * [`fork_join`] — Cilk-style repeated parallel segments;
//! * [`layered_random`] — random level graphs (edges between adjacent
//!   layers);
//! * [`series_parallel`] — recursive series/parallel compositions;
//! * [`random_dag`] — Erdős–Rényi over a topological order.

use crate::spec::{DagBuilder, DagJobSpec};
use dagsched_core::{NodeId, Rng64, Work};

/// One node of the given work (a purely sequential, minimal job).
pub fn single(work: u64) -> DagJobSpec {
    let mut b = DagBuilder::new();
    b.add_node(Work(work));
    b.build().expect("single node is always valid")
}

/// A chain of `len ≥ 1` nodes, each with `node_work` units: `W = L`.
pub fn chain(len: u32, node_work: u64) -> DagJobSpec {
    assert!(len >= 1 && node_work >= 1);
    let mut b = DagBuilder::with_capacity(len as usize, len.saturating_sub(1) as usize);
    let mut prev: Option<NodeId> = None;
    for _ in 0..len {
        let v = b.add_node(Work(node_work));
        if let Some(p) = prev {
            b.add_edge(p, v).expect("chain edges are valid");
        }
        prev = Some(v);
    }
    b.build().expect("chain is always valid")
}

/// `width ≥ 1` independent nodes of `node_work` units each: `L = node_work`.
pub fn block(width: u32, node_work: u64) -> DagJobSpec {
    assert!(width >= 1 && node_work >= 1);
    let mut b = DagBuilder::with_capacity(width as usize, 0);
    for _ in 0..width {
        b.add_node(Work(node_work));
    }
    b.build().expect("block is always valid")
}

/// Source → `width` parallel nodes → sink, with unit-work source/sink.
pub fn diamond(width: u32, node_work: u64) -> DagJobSpec {
    assert!(width >= 1 && node_work >= 1);
    let mut b = DagBuilder::with_capacity(width as usize + 2, 2 * width as usize);
    let s = b.add_node(Work(1));
    let mids: Vec<NodeId> = (0..width).map(|_| b.add_node(Work(node_work))).collect();
    let t = b.add_node(Work(1));
    for &m in &mids {
        b.add_edge(s, m).unwrap();
        b.add_edge(m, t).unwrap();
    }
    b.build().expect("diamond is always valid")
}

/// **Figure 1** of the paper, parameterized by the machine size `m ≥ 2` and a
/// chain length in nodes (`grain` work units per node).
///
/// The job is a chain of `chain_len` nodes *alongside* an independent block
/// of `(m−1)·chain_len` nodes, so that
/// `L = chain_len·grain = W/m` and `W = m·chain_len·grain`.
///
/// * Clairvoyant optimal: run the chain on one processor and spread the block
///   over the remaining `m−1` → makespan `W/m`.
/// * Adversarial semi-non-clairvoyant: execute the whole block first
///   (`(W−L)/m` time) and then the chain (`L` time) → `(W−L)/m + L`
///   `= (2 − 1/m)·W/m`.
pub fn fig1(m: u32, chain_len: u32, grain: u64) -> DagJobSpec {
    assert!(m >= 2 && chain_len >= 1 && grain >= 1);
    let block_nodes = (m - 1) as usize * chain_len as usize;
    let mut b = DagBuilder::with_capacity(chain_len as usize + block_nodes, chain_len as usize);
    // The chain first (ids 0..chain_len) ...
    let mut prev: Option<NodeId> = None;
    for _ in 0..chain_len {
        let v = b.add_node(Work(grain));
        if let Some(p) = prev {
            b.add_edge(p, v).unwrap();
        }
        prev = Some(v);
    }
    // ... then the independent block.
    for _ in 0..block_nodes {
        b.add_node(Work(grain));
    }
    b.build().expect("fig1 is always valid")
}

/// **Figure 2** of the paper: a chain of `chain_len` nodes followed by a
/// block of `block_width` nodes that all depend on the chain's last node.
/// Every node has `grain` work (the paper's `ε`).
///
/// Even a clairvoyant scheduler on `m` processors needs
/// `chain_len·grain + ceil(block_width/m)·grain` — which approaches
/// `(W−L)/m + L` as `grain → 0` relative to `W`.
pub fn fig2(chain_len: u32, block_width: u32, grain: u64) -> DagJobSpec {
    assert!(chain_len >= 1 && block_width >= 1 && grain >= 1);
    let mut b = DagBuilder::with_capacity(
        chain_len as usize + block_width as usize,
        chain_len as usize - 1 + block_width as usize,
    );
    let mut prev: Option<NodeId> = None;
    for _ in 0..chain_len {
        let v = b.add_node(Work(grain));
        if let Some(p) = prev {
            b.add_edge(p, v).unwrap();
        }
        prev = Some(v);
    }
    let last = prev.expect("chain_len >= 1");
    for _ in 0..block_width {
        let v = b.add_node(Work(grain));
        b.add_edge(last, v).unwrap();
    }
    b.build().expect("fig2 is always valid")
}

/// `segments` sequential fork-join segments: each is one fork node, `width`
/// parallel child nodes, then a join node feeding the next segment.
pub fn fork_join(segments: u32, width: u32, node_work: u64) -> DagJobSpec {
    assert!(segments >= 1 && width >= 1 && node_work >= 1);
    let mut b = DagBuilder::new();
    let mut join: Option<NodeId> = None;
    for _ in 0..segments {
        let fork = b.add_node(Work(node_work));
        if let Some(j) = join {
            b.add_edge(j, fork).unwrap();
        }
        let kids: Vec<NodeId> = (0..width).map(|_| b.add_node(Work(node_work))).collect();
        let j = b.add_node(Work(node_work));
        for &k in &kids {
            b.add_edge(fork, k).unwrap();
            b.add_edge(k, j).unwrap();
        }
        join = Some(j);
    }
    b.build().expect("fork_join is always valid")
}

/// A random layered DAG: `layers` levels with `width_lo..=width_hi` nodes
/// each, node work uniform in `work_lo..=work_hi`, and each non-first-layer
/// node gets ≥ 1 predecessor in the previous layer plus extras with
/// probability `p_edge`.
pub fn layered_random(
    rng: &mut Rng64,
    layers: u32,
    (width_lo, width_hi): (u32, u32),
    (work_lo, work_hi): (u64, u64),
    p_edge: f64,
) -> DagJobSpec {
    assert!(layers >= 1 && width_lo >= 1 && width_lo <= width_hi);
    assert!(work_lo >= 1 && work_lo <= work_hi);
    let mut b = DagBuilder::new();
    let mut prev_layer: Vec<NodeId> = Vec::new();
    for layer in 0..layers {
        let width = rng.gen_range_inclusive(width_lo as u64, width_hi as u64) as u32;
        let nodes: Vec<NodeId> = (0..width)
            .map(|_| b.add_node(Work(rng.gen_range_inclusive(work_lo, work_hi))))
            .collect();
        if layer > 0 {
            for &v in &nodes {
                // A guaranteed predecessor keeps layers genuinely dependent.
                let anchor = *rng.choose(&prev_layer).expect("non-empty layer");
                b.add_edge(anchor, v).unwrap();
                for &p in &prev_layer {
                    if p != anchor && rng.gen_bool(p_edge) {
                        b.add_edge(p, v).unwrap();
                    }
                }
            }
        }
        prev_layer = nodes;
    }
    b.build().expect("layered DAG is acyclic by construction")
}

/// A random series-parallel DAG with roughly `target_nodes` nodes: recursive
/// series/parallel composition bottoming out at single nodes with work
/// uniform in `work_lo..=work_hi`. Models Cilk-style structured parallelism.
pub fn series_parallel(
    rng: &mut Rng64,
    target_nodes: u32,
    (work_lo, work_hi): (u64, u64),
) -> DagJobSpec {
    assert!(target_nodes >= 1 && work_lo >= 1 && work_lo <= work_hi);
    let mut b = DagBuilder::new();
    // Returns (source, sink) terminals of the generated component.
    fn go(b: &mut DagBuilder, rng: &mut Rng64, budget: u32, works: (u64, u64)) -> (NodeId, NodeId) {
        if budget <= 1 {
            let v = b.add_node(Work(rng.gen_range_inclusive(works.0, works.1)));
            return (v, v);
        }
        let left = 1 + rng.gen_range(budget as u64 - 1) as u32;
        let right = budget - left;
        let (s1, t1) = go(b, rng, left, works);
        let (s2, t2) = go(b, rng, right, works);
        if rng.gen_bool(0.5) {
            // Series composition.
            b.add_edge(t1, s2).expect("series edge");
            (s1, t2)
        } else {
            // Parallel composition between fresh terminals.
            let s = b.add_node(Work(rng.gen_range_inclusive(works.0, works.1)));
            let t = b.add_node(Work(rng.gen_range_inclusive(works.0, works.1)));
            b.add_edge(s, s1).unwrap();
            b.add_edge(s, s2).unwrap();
            b.add_edge(t1, t).unwrap();
            b.add_edge(t2, t).unwrap();
            (s, t)
        }
    }
    go(&mut b, rng, target_nodes, (work_lo, work_hi));
    b.build()
        .expect("series-parallel DAG is acyclic by construction")
}

/// Erdős–Rényi DAG: `n` nodes in a fixed topological order, each forward pair
/// `(i, j)` with `i < j` becoming an edge with probability `p`.
pub fn random_dag(rng: &mut Rng64, n: u32, p: f64, (work_lo, work_hi): (u64, u64)) -> DagJobSpec {
    assert!(n >= 1 && work_lo >= 1 && work_lo <= work_hi);
    let mut b = DagBuilder::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|_| b.add_node(Work(rng.gen_range_inclusive(work_lo, work_hi))))
        .collect();
    for i in 0..n as usize {
        for j in (i + 1)..n as usize {
            if rng.gen_bool(p) {
                b.add_edge(ids[i], ids[j]).unwrap();
            }
        }
    }
    b.build().expect("forward edges cannot create a cycle")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_expected_w_and_l() {
        let d = single(7);
        assert_eq!((d.total_work(), d.span()), (Work(7), Work(7)));

        let d = chain(5, 3);
        assert_eq!((d.total_work(), d.span()), (Work(15), Work(15)));

        let d = block(6, 4);
        assert_eq!((d.total_work(), d.span()), (Work(24), Work(4)));
        assert_eq!(d.sources().len(), 6);

        let d = diamond(8, 10);
        assert_eq!(d.total_work(), Work(82));
        assert_eq!(d.span(), Work(12));
    }

    #[test]
    fn fig1_matches_paper_parameters() {
        // m = 4, chain_len = 10, unit grain: L = 10, W = 40, W/m = 10 = L.
        let m = 4;
        let d = fig1(m, 10, 1);
        let w = d.total_work().units();
        let l = d.span().units();
        assert_eq!(w, 40);
        assert_eq!(l, 10);
        assert_eq!(l, w / m as u64, "the construction forces L = W/m");
        // Only the chain head is a source together with all 30 block nodes.
        assert_eq!(d.sources().len(), 1 + 30);
        // Semi-non-clairvoyant worst case (W-L)/m + L vs clairvoyant W/m:
        let worst = (w - l) / m as u64 + l;
        assert_eq!(worst, 17); // (30/4 = 7.5 -> fractional; integral check below)
                               // ratio -> 2 - 1/m as chain_len grows.
        let d = fig1(8, 1000, 1);
        let (w, l) = (d.total_work().as_f64(), d.span().as_f64());
        let ratio = ((w - l) / 8.0 + l) / (w / 8.0);
        assert!((ratio - (2.0 - 1.0 / 8.0)).abs() < 1e-9);
    }

    #[test]
    fn fig2_is_chain_then_block() {
        let d = fig2(5, 12, 2);
        assert_eq!(d.total_work(), Work(34));
        assert_eq!(d.span(), Work(12)); // 5 chain nodes + one block node
        assert_eq!(d.sources().len(), 1, "only the chain head starts ready");
        // The block nodes all depend on the last chain node.
        assert_eq!(d.successors(dagsched_core::NodeId(4)).len(), 12);
    }

    #[test]
    fn fork_join_structure() {
        let d = fork_join(3, 4, 2);
        // Each segment: 1 fork + 4 kids + 1 join = 6 nodes.
        assert_eq!(d.num_nodes(), 18);
        assert_eq!(d.total_work(), Work(36));
        // Span: per segment fork + one kid + join = 3 nodes of work 2.
        assert_eq!(d.span(), Work(18));
        assert_eq!(d.sources().len(), 1);
    }

    #[test]
    fn layered_random_is_connected_and_deterministic() {
        let mut rng = Rng64::seed_from(11);
        let d1 = layered_random(&mut rng, 6, (2, 5), (1, 9), 0.3);
        let mut rng = Rng64::seed_from(11);
        let d2 = layered_random(&mut rng, 6, (2, 5), (1, 9), 0.3);
        assert_eq!(d1, d2, "same seed, same DAG");
        // Non-source nodes all have at least one predecessor by construction;
        // sources are exactly layer 0.
        assert!(d1.span() <= d1.total_work());
        assert!(d1.span().units() >= 6, "span crosses all 6 layers");
    }

    #[test]
    fn series_parallel_is_valid_and_single_terminal() {
        let mut rng = Rng64::seed_from(12);
        for n in [1u32, 2, 7, 40] {
            let d = series_parallel(&mut rng, n, (1, 5));
            assert!(d.num_nodes() >= n as usize);
            assert!(d.span() <= d.total_work());
        }
    }

    #[test]
    fn random_dag_density_extremes() {
        let mut rng = Rng64::seed_from(13);
        let sparse = random_dag(&mut rng, 30, 0.0, (2, 2));
        assert_eq!(sparse.num_edges(), 0);
        assert_eq!(sparse.span(), Work(2), "independent nodes");
        let dense = random_dag(&mut rng, 30, 1.0, (2, 2));
        assert_eq!(dense.num_edges(), 30 * 29 / 2);
        assert_eq!(dense.span(), Work(60), "a tournament DAG is a chain");
    }

    #[test]
    #[should_panic]
    fn fig1_requires_m_at_least_two() {
        let _ = fig1(1, 10, 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For every generated family: span ≤ work, and span ≥ max node
            /// work; parallelism ≥ 1.
            #[test]
            fn span_bounds(seed in 0u64..500, n in 1u32..40, p in 0.0f64..1.0) {
                let mut rng = Rng64::seed_from(seed);
                let d = random_dag(&mut rng, n, p, (1, 20));
                prop_assert!(d.span() <= d.total_work());
                let max_node = d.node_works().iter().map(|w| w.units()).max().unwrap();
                prop_assert!(d.span().units() >= max_node);
                prop_assert!(d.parallelism() >= 1.0 - 1e-12);
            }

            /// Unfolding any random DAG to completion touches every node
            /// exactly once and conserves work.
            #[test]
            fn unfold_executes_every_node(seed in 0u64..200, n in 1u32..30, p in 0.0f64..0.5) {
                let mut rng = Rng64::seed_from(seed);
                let d = random_dag(&mut rng, n, p, (1, 10)).into_shared();
                let total = d.total_work().units();
                let mut st = crate::unfold::UnfoldState::new(d.clone(), 1);
                let mut consumed = 0u64;
                let mut completions = 0usize;
                let mut guard = 0;
                while !st.is_complete() {
                    guard += 1;
                    prop_assert!(guard < 100_000, "unfolding must terminate");
                    let v = st.ready_prefix(1)[0];
                    let (c, done) = st.advance(v, 3);
                    consumed += c;
                    if done { completions += 1; }
                }
                prop_assert_eq!(consumed, total);
                prop_assert_eq!(completions, d.num_nodes());
            }

            /// The ready set never contains a node with unfinished
            /// predecessors (checked against the spec directly).
            #[test]
            fn ready_respects_precedence(seed in 0u64..200) {
                let mut rng = Rng64::seed_from(seed);
                let d = layered_random(&mut rng, 4, (1, 4), (1, 5), 0.4).into_shared();
                let mut st = crate::unfold::UnfoldState::new(d.clone(), 1);
                let mut done = vec![false; d.num_nodes()];
                while !st.is_complete() {
                    for v in st.ready_iter() {
                        // every predecessor of v must be done
                        for u in 0..d.num_nodes() as u32 {
                            let u = dagsched_core::NodeId(u);
                            if d.successors(u).contains(&v) {
                                prop_assert!(done[u.index()],
                                    "{v} ready but pred {u} unfinished");
                            }
                        }
                    }
                    let v = st.ready_prefix(1)[0];
                    let (_, fin) = st.advance(v, u64::MAX);
                    prop_assert!(fin);
                    done[v.index()] = true;
                }
            }
        }
    }
}
