//! Graphviz DOT export for DAG jobs.
//!
//! `dot -Tsvg job.dot > job.svg` renders the structure; the optional
//! [`UnfoldState`] overlay colors execution progress (done / ready /
//! waiting), which makes engine behaviour inspectable node by node.

use crate::spec::DagJobSpec;
use crate::unfold::UnfoldState;
use dagsched_core::NodeId;
use std::fmt::Write as _;

/// Render a spec to DOT. Node labels show `id (work)`; critical-path nodes
/// (those whose depth + height equals the span) are drawn with a double
/// border so the span is visible at a glance.
pub fn to_dot(spec: &DagJobSpec, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=ellipse, fontsize=10];");
    // depth[v]: longest path ending at v (inclusive); on a critical path iff
    // depth + height − work == span.
    let mut depth = vec![0u64; spec.num_nodes()];
    for &v in spec.topo_order() {
        let w = spec.node_work(v).units();
        let base = depth[v.index()].max(w);
        depth[v.index()] = base;
        for &s in spec.successors(v) {
            let cand = base + spec.node_work(s).units();
            if cand > depth[s.index()] {
                depth[s.index()] = cand;
            }
        }
    }
    let span = spec.span().units();
    for i in 0..spec.num_nodes() as u32 {
        let v = NodeId(i);
        let critical =
            depth[v.index()] + spec.height(v).units() - spec.node_work(v).units() == span;
        let _ = writeln!(
            out,
            "  n{i} [label=\"n{i} ({})\"{}];",
            spec.node_work(v),
            if critical { ", peripheries=2" } else { "" }
        );
    }
    for u in 0..spec.num_nodes() as u32 {
        for v in spec.successors(NodeId(u)) {
            let _ = writeln!(out, "  n{u} -> n{};", v.0);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render a runtime snapshot: completed nodes gray, ready nodes green,
/// partially-executed ready nodes orange, waiting nodes white.
pub fn to_dot_with_state(state: &UnfoldState, name: &str) -> String {
    let spec = state.spec();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=ellipse, fontsize=10, style=filled];");
    for i in 0..spec.num_nodes() as u32 {
        let v = NodeId(i);
        let total = spec.node_work(v).units() * state.scale();
        let left = state.node_remaining(v).units();
        let color = if left == 0 {
            "gray80"
        } else if state.is_ready(v) && left < total {
            "orange"
        } else if state.is_ready(v) {
            "palegreen"
        } else {
            "white"
        };
        let _ = writeln!(
            out,
            "  n{i} [label=\"n{i} {}/{}\", fillcolor={color}];",
            total - left,
            total
        );
    }
    for u in 0..spec.num_nodes() as u32 {
        for v in spec.successors(NodeId(u)) {
            let _ = writeln!(out, "  n{u} -> n{};", v.0);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// DOT identifiers allow `[A-Za-z0-9_]`; everything else becomes `_`.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'g');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::spec::DagBuilder;
    use dagsched_core::Work;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let d = gen::diamond(3, 5);
        let dot = to_dot(&d, "diamond");
        assert!(dot.starts_with("digraph diamond {"));
        for i in 0..d.num_nodes() {
            assert!(dot.contains(&format!("n{i} [label=")), "missing node {i}");
        }
        assert_eq!(dot.matches(" -> ").count(), d.num_edges());
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn critical_path_nodes_get_double_border() {
        // Chain of 2 after a parallel branch: s -> a(4), b(1); a -> t.
        let mut bld = DagBuilder::new();
        let s = bld.add_node(Work(1));
        let a = bld.add_node(Work(4));
        let b2 = bld.add_node(Work(1));
        let t = bld.add_node(Work(1));
        bld.add_edge(s, a).unwrap();
        bld.add_edge(s, b2).unwrap();
        bld.add_edge(a, t).unwrap();
        let d = bld.build().unwrap();
        let dot = to_dot(&d, "x");
        // s, a, t are critical (span 6); b is not.
        assert!(dot.contains("n0 [label=\"n0 (1)\", peripheries=2]"));
        assert!(dot.contains("n1 [label=\"n1 (4)\", peripheries=2]"));
        assert!(dot.contains("n2 [label=\"n2 (1)\"]"), "{dot}");
        assert!(dot.contains("n3 [label=\"n3 (1)\", peripheries=2]"));
    }

    #[test]
    fn state_overlay_colors_progress() {
        let d = gen::chain(3, 2).into_shared();
        let mut st = crate::unfold::UnfoldState::new(d, 1);
        st.advance(dagsched_core::NodeId(0), 2); // node 0 done, node 1 ready
        st.advance(dagsched_core::NodeId(1), 1); // node 1 partial
        let dot = to_dot_with_state(&st, "chain");
        assert!(dot.contains("n0 2/2\", fillcolor=gray80"));
        assert!(dot.contains("n1 1/2\", fillcolor=orange"));
        assert!(dot.contains("n2 0/2\", fillcolor=white"));
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("ok_name1"), "ok_name1");
        assert_eq!(sanitize("has space-and.dots"), "has_space_and_dots");
        assert_eq!(sanitize("1starts_with_digit"), "g1starts_with_digit");
        assert_eq!(sanitize(""), "g");
    }
}
