//! HPC task-graph generators: the DAG shapes produced by real parallel
//! linear-algebra and stencil codes (the programs the paper's introduction
//! motivates — Cilk/TBB/OpenMP task graphs).
//!
//! * [`cholesky`] — right-looking tiled Cholesky factorization
//!   (POTRF/TRSM/SYRK/GEMM over a `T×T` lower-triangular tile grid);
//! * [`lu`] — tiled LU without pivoting (GETRF/TRSM/GEMM);
//! * [`stencil`] — a 1-D stencil iterated over time steps (each cell
//!   depends on its neighbours in the previous step);
//! * [`wavefront`] — a 2-D dependency sweep (Smith-Waterman-like): node
//!   `(i, j)` depends on `(i−1, j)` and `(i, j−1)`.
//!
//! Every generator documents its exact node count and (where closed-form)
//! span, and the tests pin both.

use crate::spec::{DagBuilder, DagJobSpec};
use dagsched_core::{NodeId, Work};

/// Relative kernel costs for the factorization generators, in work units
/// per node. The defaults approximate tile-flop ratios (`GEMM` dominating).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCosts {
    /// Diagonal factorization kernel (POTRF/GETRF).
    pub factor: u64,
    /// Triangular solve kernel (TRSM).
    pub solve: u64,
    /// Symmetric rank-k / trailing update on the diagonal (SYRK).
    pub update_diag: u64,
    /// General update (GEMM).
    pub update: u64,
}

impl Default for KernelCosts {
    fn default() -> KernelCosts {
        KernelCosts {
            factor: 1,
            solve: 3,
            update_diag: 3,
            update: 6,
        }
    }
}

/// Tiled Cholesky factorization DAG over a `tiles × tiles` matrix.
///
/// Node counts: `T` POTRF, `T(T−1)/2` TRSM, `T(T−1)/2` SYRK and
/// `T(T−1)(T−2)/6` GEMM nodes. The critical path alternates
/// POTRF→TRSM→SYRK along the diagonal.
///
/// # Panics
/// If `tiles == 0`.
pub fn cholesky(tiles: u32, costs: KernelCosts) -> DagJobSpec {
    assert!(tiles >= 1, "need at least one tile");
    let t = tiles as usize;
    let mut b = DagBuilder::new();
    // last_write[i][j] for the lower triangle (i >= j).
    let mut last: Vec<Vec<Option<NodeId>>> = vec![vec![None; t]; t];
    let dep = |b: &mut DagBuilder, from: Option<NodeId>, to: NodeId| {
        if let Some(f) = from {
            b.add_edge(f, to).expect("builder accepts valid edges");
        }
    };
    for k in 0..t {
        let potrf = b.add_node(Work(costs.factor));
        dep(&mut b, last[k][k], potrf);
        last[k][k] = Some(potrf);
        for row in last.iter_mut().take(t).skip(k + 1) {
            let trsm = b.add_node(Work(costs.solve));
            dep(&mut b, Some(potrf), trsm);
            dep(&mut b, row[k], trsm);
            row[k] = Some(trsm);
        }
        for i in (k + 1)..t {
            for j in (k + 1)..=i {
                let node = if j == i {
                    let syrk = b.add_node(Work(costs.update_diag));
                    dep(&mut b, last[i][k], syrk); // TRSM(i,k)
                    syrk
                } else {
                    let gemm = b.add_node(Work(costs.update));
                    dep(&mut b, last[i][k], gemm); // TRSM(i,k)
                    dep(&mut b, last[j][k], gemm); // TRSM(j,k)
                    gemm
                };
                dep(&mut b, last[i][j], node);
                last[i][j] = Some(node);
            }
        }
    }
    b.build().expect("cholesky DAG is acyclic by construction")
}

/// Tiled LU factorization (no pivoting) over a `tiles × tiles` matrix.
///
/// Node counts: `T` GETRF, `T(T−1)` TRSM (row + column panels) and
/// `Σ_{k<T} (T−1−k)²` GEMM nodes.
///
/// # Panics
/// If `tiles == 0`.
pub fn lu(tiles: u32, costs: KernelCosts) -> DagJobSpec {
    assert!(tiles >= 1, "need at least one tile");
    let t = tiles as usize;
    let mut b = DagBuilder::new();
    let mut last: Vec<Vec<Option<NodeId>>> = vec![vec![None; t]; t];
    let dep = |b: &mut DagBuilder, from: Option<NodeId>, to: NodeId| {
        if let Some(f) = from {
            b.add_edge(f, to).expect("builder accepts valid edges");
        }
    };
    for k in 0..t {
        let getrf = b.add_node(Work(costs.factor));
        dep(&mut b, last[k][k], getrf);
        last[k][k] = Some(getrf);
        // Column panel below and row panel right of the diagonal tile.
        #[allow(clippy::needless_range_loop)] // i indexes both last[i][k] and last[k][i]
        for i in (k + 1)..t {
            let col = b.add_node(Work(costs.solve));
            dep(&mut b, Some(getrf), col);
            dep(&mut b, last[i][k], col);
            last[i][k] = Some(col);

            let row_panel = b.add_node(Work(costs.solve));
            dep(&mut b, Some(getrf), row_panel);
            dep(&mut b, last[k][i], row_panel);
            last[k][i] = Some(row_panel);
        }
        // Trailing submatrix updates.
        for i in (k + 1)..t {
            for j in (k + 1)..t {
                let gemm = b.add_node(Work(costs.update));
                dep(&mut b, last[i][k], gemm);
                dep(&mut b, last[k][j], gemm);
                dep(&mut b, last[i][j], gemm);
                last[i][j] = Some(gemm);
            }
        }
    }
    b.build().expect("LU DAG is acyclic by construction")
}

/// A 1-D stencil of `width` cells iterated for `steps` time steps: cell
/// `(x, s)` depends on `(x−1, s−1)`, `(x, s−1)` and `(x+1, s−1)`.
///
/// `width·steps` nodes; span = `steps·node_work` exactly.
///
/// # Panics
/// If any dimension is zero.
pub fn stencil(width: u32, steps: u32, node_work: u64) -> DagJobSpec {
    assert!(width >= 1 && steps >= 1 && node_work >= 1);
    let (w, s) = (width as usize, steps as usize);
    let mut b = DagBuilder::with_capacity(w * s, 3 * w * s);
    let mut prev_row: Vec<NodeId> = Vec::with_capacity(w);
    for step in 0..s {
        let row: Vec<NodeId> = (0..w).map(|_| b.add_node(Work(node_work))).collect();
        if step > 0 {
            for (x, &node) in row.iter().enumerate() {
                for dx in [-1i64, 0, 1] {
                    let nx = x as i64 + dx;
                    if (0..w as i64).contains(&nx) {
                        b.add_edge(prev_row[nx as usize], node)
                            .expect("valid stencil edge");
                    }
                }
            }
        }
        prev_row = row;
    }
    b.build().expect("stencil DAG is acyclic by construction")
}

/// A 2-D wavefront over an `rows × cols` grid: node `(i, j)` depends on its
/// upper and left neighbours.
///
/// `rows·cols` nodes; span = `(rows + cols − 1)·node_work` exactly.
///
/// # Panics
/// If any dimension is zero.
pub fn wavefront(rows: u32, cols: u32, node_work: u64) -> DagJobSpec {
    assert!(rows >= 1 && cols >= 1 && node_work >= 1);
    let (r, c) = (rows as usize, cols as usize);
    let mut b = DagBuilder::with_capacity(r * c, 2 * r * c);
    let mut grid: Vec<Vec<NodeId>> = Vec::with_capacity(r);
    for i in 0..r {
        let mut row = Vec::with_capacity(c);
        for j in 0..c {
            let node = b.add_node(Work(node_work));
            if i > 0 {
                b.add_edge(grid[i - 1][j], node).expect("valid edge");
            }
            if j > 0 {
                b.add_edge(row[j - 1], node).expect("valid edge");
            }
            row.push(node);
        }
        grid.push(row);
    }
    b.build().expect("wavefront DAG is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t64(t: u64) -> u64 {
        t
    }

    #[test]
    fn cholesky_node_counts_and_work() {
        for tiles in [1u64, 2, 3, 5, 8] {
            let d = cholesky(tiles as u32, KernelCosts::default());
            let potrf = tiles;
            let trsm = tiles * (tiles - 1) / 2;
            let syrk = tiles * (tiles - 1) / 2;
            let gemm = tiles * (tiles - 1) * tiles.saturating_sub(2) / 6;
            assert_eq!(
                d.num_nodes() as u64,
                potrf + trsm + syrk + gemm,
                "tiles={tiles}"
            );
            let c = KernelCosts::default();
            assert_eq!(
                d.total_work().units(),
                potrf * c.factor + trsm * c.solve + syrk * c.update_diag + gemm * c.update
            );
            assert!(d.span() <= d.total_work());
        }
    }

    #[test]
    fn cholesky_critical_path_alternates_diagonal_kernels() {
        // For T >= 2 the span includes at least one POTRF + TRSM + SYRK per
        // diagonal step after the first: span >= factor + (T-1)(solve +
        // update_diag + factor) with default costs... pin the exact value
        // for small T where it's easy to verify by hand.
        let c = KernelCosts::default();
        let d = cholesky(2, c);
        // POTRF(0) -> TRSM(1,0) -> SYRK(1,0) -> POTRF(1): 1+3+3+1 = 8.
        assert_eq!(d.span(), Work(8));
        let d = cholesky(3, c);
        // One more TRSM/SYRK/POTRF round: 8 + 3 + 3 + 1 = 15... plus GEMM
        // paths; the diagonal chain dominates: POTRF0,TRSM,SYRK,POTRF1,
        // TRSM,SYRK,POTRF2 = 1+3+3+1+3+3+1 = 15. GEMM path: POTRF0, TRSM(2,0),
        // GEMM(2,1,0), ... check machine result is 15 or higher via GEMM.
        assert!(d.span().units() >= 15, "span {}", d.span());
    }

    #[test]
    fn cholesky_parallelism_grows_with_tiles() {
        let small = cholesky(3, KernelCosts::default());
        let large = cholesky(10, KernelCosts::default());
        assert!(large.parallelism() > small.parallelism());
        assert!(large.parallelism() > 4.0, "{}", large.parallelism());
    }

    #[test]
    fn lu_node_counts() {
        for tiles in [1u64, 2, 4, 6] {
            let d = lu(tiles as u32, KernelCosts::default());
            let getrf = tiles;
            let trsm = tiles * (tiles - 1); // row + col panels
            let gemm: u64 = (0..tiles).map(|k| (tiles - 1 - k) * (tiles - 1 - k)).sum();
            assert_eq!(d.num_nodes() as u64, getrf + trsm + gemm, "tiles={tiles}");
            assert!(d.span() <= d.total_work());
        }
    }

    #[test]
    fn lu_single_tile_is_one_node() {
        let d = lu(1, KernelCosts::default());
        assert_eq!(d.num_nodes(), 1);
        assert_eq!(d.total_work(), Work(1));
    }

    #[test]
    fn stencil_span_is_exactly_steps() {
        for (w, s, g) in [(1u32, 1u32, 2u64), (8, 5, 3), (16, 10, 1)] {
            let d = stencil(w, s, g);
            assert_eq!(d.num_nodes(), (w * s) as usize);
            assert_eq!(d.span().units(), t64(s as u64) * g, "w={w} s={s}");
            assert_eq!(d.total_work().units(), (w * s) as u64 * g);
            // Parallelism ≈ width.
            assert!((d.parallelism() - w as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn wavefront_span_is_the_antidiagonal() {
        for (r, c, g) in [(1u32, 1u32, 1u64), (4, 6, 2), (10, 10, 1)] {
            let d = wavefront(r, c, g);
            assert_eq!(d.num_nodes(), (r * c) as usize);
            assert_eq!(d.span().units(), (r + c - 1) as u64 * g);
            assert_eq!(d.sources().len(), 1, "only the corner starts ready");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            cholesky(5, KernelCosts::default()),
            cholesky(5, KernelCosts::default())
        );
        assert_eq!(lu(4, KernelCosts::default()), lu(4, KernelCosts::default()));
        assert_eq!(stencil(6, 4, 2), stencil(6, 4, 2));
        assert_eq!(wavefront(5, 7, 1), wavefront(5, 7, 1));
    }

    #[test]
    fn custom_costs_flow_through() {
        let costs = KernelCosts {
            factor: 10,
            solve: 20,
            update_diag: 30,
            update: 40,
        };
        let d = cholesky(2, costs);
        // 1 POTRF(k=0) + 1 TRSM + 1 SYRK + 1 POTRF(k=1) = 10+20+30+10.
        assert_eq!(d.total_work(), Work(70));
        assert_eq!(d.span(), Work(70), "T=2 cholesky is a pure chain");
    }

    #[test]
    fn unfolding_an_hpc_dag_exposes_wavefront_parallelism() {
        use crate::unfold::UnfoldState;
        let d = wavefront(4, 4, 1).into_shared();
        let mut st = UnfoldState::new(d, 1);
        // Execute in BFS order; the ready set size follows the antidiagonal
        // profile 1,2,3,4,3,2,1.
        let mut max_ready = 0;
        while !st.is_complete() {
            max_ready = max_ready.max(st.ready_count());
            let n = st.ready_prefix(1)[0];
            st.advance(n, u64::MAX);
        }
        assert_eq!(max_ready, 4);
    }
}
