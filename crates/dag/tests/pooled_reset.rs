//! Property test: a pooled-and-reset [`UnfoldState`] is observationally
//! identical to a freshly constructed one.
//!
//! The engine's lifecycle pool recycles `UnfoldState`s from completed and
//! expired jobs via `reset_from`, so the entire byte-invisibility argument
//! for PR 5's pooling layer reduces to this property: no matter how dirty
//! the recycled state is (arbitrary partial unfold of an unrelated DAG),
//! after `reset_from(spec, scale)` it must be indistinguishable from
//! `UnfoldState::new(spec, scale)` under every observable and under any
//! interleaving of `advance` / `advance_bulk` the engine can issue.

use dagsched_core::{NodeId, Rng64};
use dagsched_dag::{gen, UnfoldState};
use proptest::prelude::*;

/// Compare every scheduler-visible observable of the two states.
fn assert_observably_equal(pooled: &UnfoldState, fresh: &UnfoldState) {
    assert_eq!(pooled.scale(), fresh.scale());
    assert_eq!(pooled.ready_count(), fresh.ready_count());
    assert_eq!(pooled.completed_nodes(), fresh.completed_nodes());
    assert_eq!(pooled.remaining_total(), fresh.remaining_total());
    assert_eq!(pooled.is_complete(), fresh.is_complete());
    let n = fresh.spec().num_nodes();
    assert_eq!(
        pooled.ready_prefix(n),
        fresh.ready_prefix(n),
        "ready FIFO order diverged"
    );
    for v in 0..n as u32 {
        assert_eq!(pooled.is_ready(NodeId(v)), fresh.is_ready(NodeId(v)));
        assert_eq!(
            pooled.node_remaining(NodeId(v)),
            fresh.node_remaining(NodeId(v))
        );
    }
    assert_eq!(pooled.remaining_span(), fresh.remaining_span());
}

/// Drive a state with `ops` random steps (or until complete), mixing
/// completing `advance` calls with non-completing `advance_bulk` calls
/// exactly as the fast-forward engine does. Both states receive the same
/// rng, hence the same interleaving.
fn step(state: &mut UnfoldState, rng: &mut Rng64) {
    let k = state.ready_count();
    debug_assert!(k > 0);
    let pick = state.ready_prefix(k)[rng.gen_range(k as u64) as usize];
    let rem = state.node_remaining(pick).units();
    if rem >= 2 && rng.gen_range(3) == 0 {
        // Bulk path: must strictly not complete the node.
        state.advance_bulk(pick, 1 + rng.gen_range(rem - 1));
    } else {
        state.advance(pick, 1 + rng.gen_range(rem + 2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn pooled_reset_is_observationally_fresh(
        seed in 0u64..10_000,
        dirty_n in 1u32..24,
        target_n in 1u32..24,
        dirty_ops in 0usize..40,
        scale in 1u64..4,
    ) {
        let mut rng = Rng64::seed_from(seed);

        // Build a pooled state and dirty it with a partial unfold of an
        // unrelated DAG, as a recycled slot would be after a real run.
        let dirty_spec = gen::random_dag(&mut rng, dirty_n, 0.3, (1, 6)).into_shared();
        let mut pooled = UnfoldState::new(dirty_spec, 1 + seed % 3);
        for _ in 0..dirty_ops {
            if pooled.is_complete() {
                break;
            }
            step(&mut pooled, &mut rng);
        }

        // Reset onto the target spec; build the fresh twin.
        let spec = gen::random_dag(&mut rng, target_n, 0.25, (1, 6)).into_shared();
        pooled.reset_from(spec.clone(), scale);
        let mut fresh = UnfoldState::new(spec, scale);
        assert_observably_equal(&pooled, &fresh);

        // Lockstep-unfold both to completion under one interleaving,
        // checking every observable after every step.
        let mut op_rng_a = Rng64::seed_from(seed ^ 0xD1CE);
        let mut op_rng_b = Rng64::seed_from(seed ^ 0xD1CE);
        while !fresh.is_complete() {
            step(&mut pooled, &mut op_rng_a);
            step(&mut fresh, &mut op_rng_b);
            assert_observably_equal(&pooled, &fresh);
        }
        prop_assert!(pooled.is_complete());
    }
}
