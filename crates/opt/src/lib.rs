//! # dagsched-opt
//!
//! Benchmarks to compare the online schedulers against. The true optimal
//! clairvoyant schedule is NP-hard even to approximate (the paper cites the
//! `2−ε` hardness for precedence-constrained makespan), so this crate
//! provides:
//!
//! * **Upper bounds** on OPT's profit ([`bounds`]): an exact branch-and-bound
//!   over job subsets satisfying interval demand-bound constraints (small
//!   instances), and a fractional density-packing bound (any size). Measured
//!   competitive ratios against these bounds are *conservative* — they can
//!   only overstate how far the algorithm is from OPT.
//! * **Achievable baselines** ([`clairvoyant`]): longest-path-first list
//!   scheduling with full DAG knowledge — a lower bound on OPT that
//!   certifies the Fig. 1 / Fig. 2 constructions behave as the paper says.
//! * **Certification** ([`verify`]): on single-processor sequential-job
//!   instances the demand bound is *exact* (EDF optimality) — the verifier
//!   extracts a witness schedule, so competitive ratios on that class are
//!   against true OPT.

#![warn(missing_docs)]

pub mod bounds;
pub mod clairvoyant;
pub mod verify;

pub use bounds::{exact_subset_ub, fractional_ub};
pub use clairvoyant::{adversarial_makespan, clairvoyant_edf_profit, lpf_makespan};
pub use verify::{is_m1_sequential, verify_achievable_m1};
