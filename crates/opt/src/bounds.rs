//! Upper bounds on the optimal clairvoyant profit.
//!
//! Any feasible 1-speed schedule must satisfy, for every time interval
//! `[s, e]`, the **demand bound**: the total work of completed jobs whose
//! whole window `[r_i, d_i]` lies inside `[s, e]` is at most `m·(e−s)` (times
//! the speed, for augmented adversaries). Maximizing profit subject to these
//! necessary conditions therefore upper-bounds OPT:
//!
//! * [`exact_subset_ub`] — branch-and-bound over job subsets (exact maximum
//!   of the relaxation; exponential, gated on instance size);
//! * [`fractional_ub`] — a one-interval fractional relaxation that handles
//!   any size: sort by profit density `p/W` and fill `m·speed·window`
//!   processor-time fractionally.
//!
//! Jobs that are *individually* infeasible (`D_i < max{L_i/s, W_i/(s·m)}`)
//! are excluded from both bounds — no schedule can complete them.

use dagsched_core::{Result, SchedError, Speed};
use dagsched_workload::Instance;

/// One job's window and size, preprocessed for the bounds.
#[derive(Debug, Clone, Copy)]
struct Item {
    r: u64,
    d: u64,
    w: u64,
    p: u64,
}

/// Extract jobs that at least one schedule could conceivably complete at the
/// given speed. For general profit functions the window runs to the last
/// useful time and the profit is the maximum value — still an upper bound.
fn feasible_items(inst: &Instance, speed: Speed) -> Vec<Item> {
    let m = inst.m() as u128;
    let (num, den) = (speed.num() as u128, speed.den() as u128);
    inst.jobs()
        .iter()
        .filter_map(|j| {
            let r = j.arrival.ticks();
            let d_rel = j.profit.last_useful_time().ticks();
            let w = j.work().units();
            let l = j.span().units();
            // Completing within D requires D ≥ L/s and D ≥ W/(s·m):
            // D·s ≥ L  ⇔  D·num ≥ L·den; similarly with m.
            let d128 = d_rel as u128;
            if d128 * num < l as u128 * den {
                return None;
            }
            if d128 * num * m < w as u128 * den {
                return None;
            }
            Some(Item {
                r,
                d: r + d_rel,
                w,
                p: j.profit.max_profit(),
            })
        })
        .collect()
}

/// Fractional density-packing upper bound on OPT's profit at `speed`.
///
/// Capacity: `m·speed·(latest deadline − earliest arrival)` processor-time;
/// jobs sorted by `p/W` descending are packed fractionally. Never below
/// [`exact_subset_ub`] and valid for any instance size.
pub fn fractional_ub(inst: &Instance, speed: Speed) -> u64 {
    let items = feasible_items(inst, speed);
    if items.is_empty() {
        return 0;
    }
    let lo = items.iter().map(|i| i.r).min().expect("non-empty");
    let hi = items.iter().map(|i| i.d).max().expect("non-empty");
    let capacity = (hi - lo) as f64 * inst.m() as f64 * speed.as_f64();
    let mut sorted: Vec<&Item> = items.iter().collect();
    sorted.sort_by(|a, b| {
        let da = a.p as f64 / a.w as f64;
        let db = b.p as f64 / b.w as f64;
        db.total_cmp(&da)
    });
    let mut left = capacity;
    let mut profit = 0.0f64;
    for it in sorted {
        if left <= 0.0 {
            break;
        }
        let take = (it.w as f64).min(left);
        profit += it.p as f64 * take / it.w as f64;
        left -= take;
    }
    profit.ceil() as u64
}

/// Exact maximum-profit subset satisfying every interval demand bound —
/// an upper bound on OPT at `speed`.
///
/// # Errors
/// [`SchedError::Unsupported`] when the instance has more than `max_jobs`
/// feasible jobs (the search is exponential; 24 is comfortable).
pub fn exact_subset_ub(inst: &Instance, speed: Speed, max_jobs: usize) -> Result<u64> {
    let mut items = feasible_items(inst, speed);
    if items.len() > max_jobs {
        return Err(SchedError::Unsupported(format!(
            "exact bound limited to {max_jobs} jobs, instance has {} feasible",
            items.len()
        )));
    }
    if items.is_empty() {
        return Ok(0);
    }
    // Most profitable first: good upper bounds early → strong pruning.
    items.sort_by_key(|it| std::cmp::Reverse(it.p));
    let n = items.len();
    let suffix_profit: Vec<u64> = {
        let mut s = vec![0u64; n + 1];
        for i in (0..n).rev() {
            s[i] = s[i + 1] + items[i].p;
        }
        s
    };
    // Critical interval endpoints.
    let mut starts: Vec<u64> = items.iter().map(|i| i.r).collect();
    let mut ends: Vec<u64> = items.iter().map(|i| i.d).collect();
    starts.sort_unstable();
    starts.dedup();
    ends.sort_unstable();
    ends.dedup();

    struct Ctx<'a> {
        items: &'a [Item],
        suffix_profit: &'a [u64],
        starts: &'a [u64],
        ends: &'a [u64],
        m: u128,
        num: u128,
        den: u128,
        best: u64,
        chosen: Vec<usize>,
    }

    impl Ctx<'_> {
        /// Would adding item `k` keep every interval containing its window
        /// within capacity?
        fn fits(&self, k: usize) -> bool {
            let it = self.items[k];
            for &s in self.starts.iter().filter(|&&s| s <= it.r) {
                for &e in self.ends.iter().filter(|&&e| e >= it.d) {
                    let mut demand = it.w as u128;
                    for &c in &self.chosen {
                        let jc = self.items[c];
                        if jc.r >= s && jc.d <= e {
                            demand += jc.w as u128;
                        }
                    }
                    // demand ≤ m · (e−s) · speed
                    if demand * self.den > self.m * (e - s) as u128 * self.num {
                        return false;
                    }
                }
            }
            true
        }

        fn search(&mut self, idx: usize, profit: u64) {
            self.best = self.best.max(profit);
            if idx >= self.items.len() {
                return;
            }
            if profit + self.suffix_profit[idx] <= self.best {
                return; // even taking everything left cannot improve
            }
            // Branch: include idx if feasible.
            if self.fits(idx) {
                self.chosen.push(idx);
                self.search(idx + 1, profit + self.items[idx].p);
                self.chosen.pop();
            }
            // Branch: exclude idx.
            self.search(idx + 1, profit);
        }
    }

    let mut ctx = Ctx {
        items: &items,
        suffix_profit: &suffix_profit,
        starts: &starts,
        ends: &ends,
        m: inst.m() as u128,
        num: speed.num() as u128,
        den: speed.den() as u128,
        best: 0,
        chosen: Vec::new(),
    };
    ctx.search(0, 0);
    Ok(ctx.best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::{JobId, Time};
    use dagsched_dag::gen;
    use dagsched_workload::{Instance, JobSpec, StepProfitFn, WorkloadGen};

    fn job(id: u32, r: u64, dag: dagsched_dag::DagJobSpec, d: u64, p: u64) -> JobSpec {
        JobSpec::new(
            JobId(id),
            Time(r),
            dag.into_shared(),
            StepProfitFn::deadline(Time(d), p),
        )
    }

    #[test]
    fn single_feasible_job_bounds_equal_its_profit() {
        let inst = Instance::new(2, vec![job(0, 0, gen::block(4, 2), 10, 7)]).unwrap();
        assert_eq!(exact_subset_ub(&inst, Speed::ONE, 24).unwrap(), 7);
        assert_eq!(fractional_ub(&inst, Speed::ONE), 7);
    }

    #[test]
    fn infeasible_jobs_are_excluded() {
        // Span 12 > deadline 10: no schedule completes it.
        let inst = Instance::new(4, vec![job(0, 0, gen::chain(6, 2), 10, 9)]).unwrap();
        assert_eq!(exact_subset_ub(&inst, Speed::ONE, 24).unwrap(), 0);
        assert_eq!(fractional_ub(&inst, Speed::ONE), 0);
        // W/m constraint: W = 40 on m = 2 needs 20 > 10 ticks.
        let inst = Instance::new(2, vec![job(0, 0, gen::block(20, 2), 10, 9)]).unwrap();
        assert_eq!(exact_subset_ub(&inst, Speed::ONE, 24).unwrap(), 0);
        // ... but speed 4 makes it feasible: 40/(2·4) = 5 ≤ 10.
        let s4 = Speed::integer(4).unwrap();
        assert_eq!(exact_subset_ub(&inst, s4, 24).unwrap(), 9);
    }

    #[test]
    fn demand_bound_picks_the_better_conflicting_job() {
        // Two jobs, same window [0, 10], m = 1: each W = 8; both together
        // need 16 > 10. OPT takes the more profitable one.
        let inst = Instance::new(
            1,
            vec![
                job(0, 0, gen::single(8), 10, 5),
                job(1, 0, gen::single(8), 10, 9),
            ],
        )
        .unwrap();
        assert_eq!(exact_subset_ub(&inst, Speed::ONE, 24).unwrap(), 9);
        // The fractional bound is looser: 9 + 5·(2/8) → ceil(10.25) = 11.
        assert_eq!(fractional_ub(&inst, Speed::ONE), 11);
    }

    #[test]
    fn nested_windows_are_enforced() {
        // Inner job [4, 6] with W = 2 fills its window on m = 1; outer job
        // [0, 10] with W = 9 would need 9 of the remaining 8 slots.
        let inst = Instance::new(
            1,
            vec![
                job(0, 0, gen::single(9), 10, 3),
                job(1, 4, gen::single(2), 2, 3),
            ],
        )
        .unwrap();
        let ub = exact_subset_ub(&inst, Speed::ONE, 24).unwrap();
        // The pairwise interval [0,10] holds demand 11 > 10 → only one fits.
        assert_eq!(ub, 3);
    }

    #[test]
    fn exact_never_exceeds_fractional() {
        for seed in 0..6 {
            let inst = WorkloadGen::standard(4, 14, seed).generate().unwrap();
            let e = exact_subset_ub(&inst, Speed::ONE, 24).unwrap();
            let f = fractional_ub(&inst, Speed::ONE);
            assert!(e <= f, "seed {seed}: exact {e} > fractional {f}");
        }
    }

    #[test]
    fn bounds_are_monotone_in_speed() {
        let inst = WorkloadGen::standard(4, 12, 3).generate().unwrap();
        let s1 = exact_subset_ub(&inst, Speed::ONE, 24).unwrap();
        let s2 = exact_subset_ub(&inst, Speed::integer(2).unwrap(), 24).unwrap();
        assert!(s2 >= s1);
        assert!(
            fractional_ub(&inst, Speed::integer(2).unwrap()) >= fractional_ub(&inst, Speed::ONE)
        );
    }

    #[test]
    fn size_gate_errors_cleanly() {
        let inst = WorkloadGen::standard(4, 30, 0).generate().unwrap();
        assert!(matches!(
            exact_subset_ub(&inst, Speed::ONE, 10),
            Err(SchedError::Unsupported(_))
        ));
    }

    #[test]
    fn ub_dominates_any_simulated_schedule() {
        use dagsched_engine::{simulate, SimConfig};
        use dagsched_sched::GreedyDensity;
        for seed in 0..4 {
            let inst = WorkloadGen::standard(4, 16, 100 + seed).generate().unwrap();
            let mut s = GreedyDensity::new(4);
            let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
            let ub = exact_subset_ub(&inst, Speed::ONE, 24).unwrap();
            assert!(
                r.total_profit <= ub,
                "seed {seed}: schedule {} beat the 'upper bound' {ub}",
                r.total_profit
            );
        }
    }
}
