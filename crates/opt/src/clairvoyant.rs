//! Achievable clairvoyant baselines (lower bounds on OPT).
//!
//! These reuse the engine with the *clairvoyant* node-pick policies, which
//! are forbidden to online semi-non-clairvoyant schedulers but exactly what
//! the optimal solution in Section 4 is allowed to do:
//!
//! * [`lpf_makespan`] — longest-path-first greedy execution of a single DAG
//!   on `m` processors: on the Figure 1 job this achieves the clairvoyant
//!   `W/m`;
//! * [`adversarial_makespan`] — the same greedy execution under the
//!   adversarial pick: the semi-non-clairvoyant worst case `(W−L)/m + L`;
//! * [`clairvoyant_edf_profit`] — EDF with critical-path-first node picks
//!   over a whole instance: a schedule OPT is at least as good as.

use dagsched_core::{JobId, Result, Speed, Time};
use dagsched_dag::DagJobSpec;
use dagsched_engine::{simulate, NodePick, SimConfig};
use dagsched_sched::{Edf, Fifo};
use dagsched_workload::{Instance, JobSpec, StepProfitFn};
use std::sync::Arc;

/// Run one DAG greedily on `m` processors at `speed` with the given pick
/// policy; returns the makespan in ticks.
fn single_dag_makespan(dag: Arc<DagJobSpec>, m: u32, speed: Speed, pick: NodePick) -> Result<Time> {
    // A far-away deadline so the job never expires; profit irrelevant.
    let horizon = dag.total_work().as_ticks() * speed.work_scale().max(1) + 2;
    let inst = Instance::new(
        m,
        vec![JobSpec::new(
            JobId(0),
            Time::ZERO,
            dag,
            StepProfitFn::deadline(Time(horizon), 1),
        )],
    )?;
    let cfg = SimConfig {
        speed,
        pick,
        ..SimConfig::default()
    };
    let mut sched = Fifo::new(m);
    let r = simulate(&inst, &mut sched, &cfg)?;
    Ok(r.makespan().expect("the lone job always completes"))
}

/// Clairvoyant greedy makespan: longest-path-first list scheduling.
pub fn lpf_makespan(dag: Arc<DagJobSpec>, m: u32, speed: Speed) -> Result<Time> {
    single_dag_makespan(dag, m, speed, NodePick::CriticalPathFirst)
}

/// Semi-non-clairvoyant *worst-case* greedy makespan: the adversary always
/// runs off-critical-path nodes first.
pub fn adversarial_makespan(dag: Arc<DagJobSpec>, m: u32, speed: Speed) -> Result<Time> {
    single_dag_makespan(dag, m, speed, NodePick::AdversarialLowHeight)
}

/// Profit earned by clairvoyant EDF (earliest-deadline-first with
/// critical-path-first node picks) on a whole instance at `speed` — an
/// achievable benchmark, hence a lower bound on OPT.
pub fn clairvoyant_edf_profit(inst: &Instance, speed: Speed) -> Result<u64> {
    let cfg = SimConfig {
        speed,
        pick: NodePick::CriticalPathFirst,
        ..SimConfig::default()
    };
    let mut sched = Edf::new(inst.m());
    Ok(simulate(inst, &mut sched, &cfg)?.total_profit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Work;
    use dagsched_dag::gen;
    use dagsched_workload::WorkloadGen;

    #[test]
    fn fig1_gap_matches_theorem1_exactly() {
        // m = 8, chain 80: W = 640, L = 80 = W/m.
        let m = 8u32;
        let dag = gen::fig1(m, 80, 1).into_shared();
        let w = dag.total_work().units();
        let l = dag.span().units();
        let friendly = lpf_makespan(dag.clone(), m, Speed::ONE).unwrap();
        let adversarial = adversarial_makespan(dag.clone(), m, Speed::ONE).unwrap();
        assert_eq!(friendly, Time(w / m as u64), "clairvoyant achieves W/m");
        assert_eq!(
            adversarial,
            Time((w - l) / m as u64 + l),
            "adversary forces (W−L)/m + L"
        );
        // The ratio is exactly 2 − 1/m.
        let ratio = adversarial.as_f64() / friendly.as_f64();
        assert!((ratio - (2.0 - 1.0 / m as f64)).abs() < 1e-9);
    }

    #[test]
    fn theorem1_speed_threshold_closes_the_gap() {
        // At speed 2 − 1/m the adversarial execution finishes within the
        // clairvoyant 1-speed makespan (up to rounding).
        let m = 4u32;
        let dag = gen::fig1(m, 40, 1).into_shared();
        let friendly1 = lpf_makespan(dag.clone(), m, Speed::ONE).unwrap();
        let s = Speed::theorem1_threshold(m).unwrap();
        let adv_fast = adversarial_makespan(dag, m, s).unwrap();
        // One tick of slack absorbs the discretization of the block phase
        // (the continuous bound is exact: 70 / (7/4) = 40).
        assert!(
            adv_fast.ticks() <= friendly1.ticks() + 1,
            "at 2−1/m speed: adversarial {adv_fast} vs clairvoyant {friendly1}"
        );
    }

    #[test]
    fn fig2_floor_applies_even_to_clairvoyant() {
        // Chain of c nodes then a block: even LPF needs
        // c·g + ceil(width/m)·g.
        let (c, width, g, m) = (10u32, 64u32, 2u64, 8u32);
        let dag = gen::fig2(c, width, g).into_shared();
        let ms = lpf_makespan(dag, m, Speed::ONE).unwrap();
        let expect = c as u64 * g + (width as u64).div_ceil(m as u64) * g;
        assert_eq!(ms, Time(expect));
    }

    #[test]
    fn lpf_never_slower_than_adversary() {
        for seed in 0..5u64 {
            let mut rng = dagsched_core::Rng64::seed_from(seed);
            let dag = gen::layered_random(&mut rng, 5, (1, 6), (1, 9), 0.4).into_shared();
            let f = lpf_makespan(dag.clone(), 4, Speed::ONE).unwrap();
            let a = adversarial_makespan(dag.clone(), 4, Speed::ONE).unwrap();
            assert!(f <= a, "seed {seed}: LPF {f} > adversarial {a}");
            // Both within the greedy guarantee (W−L)/m + L and ≥ max(L, W/m).
            let w = dag.total_work().as_f64();
            let l = dag.span().as_f64();
            let brent = (w - l) / 4.0 + l;
            assert!(a.as_f64() <= brent + 1e-9, "greedy bound violated");
            assert!(f.as_f64() >= (w / 4.0).max(l) - 1e-9);
        }
    }

    #[test]
    fn single_node_dag_makespan_is_its_work() {
        let dag = gen::single(17).into_shared();
        assert_eq!(lpf_makespan(dag.clone(), 8, Speed::ONE).unwrap(), Time(17));
        assert_eq!(adversarial_makespan(dag, 8, Speed::ONE).unwrap(), Time(17));
        let dag = gen::single(17).into_shared();
        assert_eq!(
            lpf_makespan(dag, 8, Speed::new(17, 5).unwrap()).unwrap(),
            Time(5)
        );
    }

    #[test]
    fn clairvoyant_edf_dominated_by_exact_ub() {
        for seed in 0..4 {
            let inst = WorkloadGen::standard(4, 14, 50 + seed).generate().unwrap();
            let achieved = clairvoyant_edf_profit(&inst, Speed::ONE).unwrap();
            let ub = crate::bounds::exact_subset_ub(&inst, Speed::ONE, 24).unwrap();
            assert!(achieved <= ub, "seed {seed}: {achieved} > UB {ub}");
        }
    }

    #[test]
    fn parallelism_helps_clairvoyant_edf() {
        let inst = WorkloadGen::standard(16, 40, 9).generate().unwrap();
        let p1 = clairvoyant_edf_profit(&inst, Speed::ONE).unwrap();
        let p2 = clairvoyant_edf_profit(&inst, Speed::integer(2).unwrap()).unwrap();
        assert!(p2 >= p1, "speed can only help: {p1} -> {p2}");
        let _ = Work(0); // keep the Work import exercised
    }
}
