//! Achievability verification for the OPT upper bounds.
//!
//! The demand-bound relaxation behind [`exact_subset_ub`](crate::bounds) is
//! only *necessary* for feasibility in general — but for **single-processor
//! sequential jobs** it is also *sufficient* (preemptive EDF is optimal on
//! one processor: a set is schedulable iff no interval is over-demanded).
//! [`verify_achievable_m1`] exploits that to certify the exact bound is
//! *tight* on such instances: it simulates EDF on the chosen subset and
//! checks every job completes.
//!
//! This gives the workspace a class of instances where the reported
//! "competitive ratio vs upper bound" is the ratio vs *true OPT*.

use crate::bounds::exact_subset_ub;
use dagsched_core::{JobId, Result, SchedError, Speed};
use dagsched_engine::{simulate, SimConfig};
use dagsched_sched::Edf;
use dagsched_workload::{Instance, JobSpec};

/// Is the instance in the class where the demand bound is exact:
/// one processor, every job a single node?
pub fn is_m1_sequential(inst: &Instance) -> bool {
    inst.m() == 1 && inst.jobs().iter().all(|j| j.dag.num_nodes() == 1)
}

/// For an `m = 1` sequential-job instance, compute the exact OPT **and**
/// certify it by scheduling: returns `(profit, the completing subset)`.
///
/// # Errors
/// [`SchedError::Unsupported`] if the instance is not in the certified
/// class or exceeds `max_jobs`; [`SchedError::InvalidInstance`] if
/// (contrary to the theorem) EDF fails to complete the chosen subset —
/// which would indicate a bug in the bound or the engine, so tests treat
/// it as fatal.
pub fn verify_achievable_m1(inst: &Instance, max_jobs: usize) -> Result<(u64, Vec<JobId>)> {
    if !is_m1_sequential(inst) {
        return Err(SchedError::Unsupported(
            "certification requires m = 1 and single-node jobs".into(),
        ));
    }
    let target = exact_subset_ub(inst, Speed::ONE, max_jobs)?;
    // Re-run the search, but this time extract a witness subset: greedily
    // test subsets via branch and bound is overkill — instead, find any
    // max-profit subset by trying jobs in profit order and re-checking the
    // bound on the restricted instance.
    //
    // Simple exact approach for the certified class: enumerate via the same
    // B&B by deleting one job at a time when it does not reduce the bound.
    let mut kept: Vec<usize> = (0..inst.len()).collect();
    let current = target;
    let mut i = 0;
    while i < kept.len() {
        // Try removing kept[i]; if the bound is unchanged, drop it.
        let trial: Vec<JobSpec> = kept
            .iter()
            .enumerate()
            .filter(|(pos, _)| *pos != i)
            .map(|(_, &idx)| inst.jobs()[idx].clone())
            .collect();
        if trial.is_empty() {
            break;
        }
        let renumbered = renumber(inst.m(), &trial)?;
        let ub = exact_subset_ub(&renumbered, Speed::ONE, max_jobs)?;
        if ub == current {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    // `kept` is now a minimal subset preserving the bound; its own demand
    // relaxation equals its total profit, so EDF must complete all of it.
    let chosen: Vec<JobSpec> = kept.iter().map(|&idx| inst.jobs()[idx].clone()).collect();
    let sub = renumber(inst.m(), &chosen)?;
    let mut edf = Edf::new(1);
    let r = simulate(&sub, &mut edf, &SimConfig::default())?;
    let achieved = r.total_profit;
    if achieved != current {
        return Err(SchedError::InvalidInstance(format!(
            "EDF achieved {achieved} but the demand bound promises {current}: \
             bound or engine bug"
        )));
    }
    Ok((current, kept.iter().map(|&i| inst.jobs()[i].id).collect()))
}

/// Rebuild an instance from a job subset with dense ids (keeps arrival
/// order).
fn renumber(m: u32, jobs: &[JobSpec]) -> Result<Instance> {
    let mut sorted: Vec<JobSpec> = jobs.to_vec();
    sorted.sort_by_key(|j| j.arrival);
    let renumbered: Vec<JobSpec> = sorted
        .into_iter()
        .enumerate()
        .map(|(i, j)| JobSpec::new(JobId(i as u32), j.arrival, j.dag.clone(), j.profit.clone()))
        .collect();
    Instance::new(m, renumbered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::{Rng64, Time};
    use dagsched_dag::gen;
    use dagsched_workload::StepProfitFn;

    fn job(id: u32, r: u64, w: u64, d: u64, p: u64) -> JobSpec {
        JobSpec::new(
            JobId(id),
            Time(r),
            gen::single(w).into_shared(),
            StepProfitFn::deadline(Time(d), p),
        )
    }

    #[test]
    fn class_detection() {
        let seq = Instance::new(1, vec![job(0, 0, 3, 9, 1)]).unwrap();
        assert!(is_m1_sequential(&seq));
        let par = Instance::new(
            1,
            vec![JobSpec::new(
                JobId(0),
                Time(0),
                gen::block(2, 1).into_shared(),
                StepProfitFn::deadline(Time(9), 1),
            )],
        )
        .unwrap();
        assert!(!is_m1_sequential(&par));
        let m2 = Instance::new(2, vec![job(0, 0, 3, 9, 1)]).unwrap();
        assert!(!is_m1_sequential(&m2));
    }

    #[test]
    fn certifies_a_simple_conflict() {
        // Two jobs, window [0, 10], works 8 each: only one fits; the bound
        // picks profit 9 and EDF on that job achieves it.
        let inst = Instance::new(1, vec![job(0, 0, 8, 10, 5), job(1, 0, 8, 10, 9)]).unwrap();
        let (profit, witness) = verify_achievable_m1(&inst, 24).unwrap();
        assert_eq!(profit, 9);
        assert_eq!(witness, vec![JobId(1)]);
    }

    #[test]
    fn certifies_random_m1_instances() {
        // The headline property: on the certified class, the "upper bound"
        // IS the optimum, achieved by EDF, across random instances.
        let mut rng = Rng64::seed_from(33);
        for trial in 0..15 {
            let n = 3 + rng.gen_range(8) as usize;
            let mut jobs = Vec::new();
            let mut t = 0u64;
            for i in 0..n {
                t += rng.gen_range(6);
                let w = 1 + rng.gen_range(6);
                let d = w + rng.gen_range(12);
                let p = 1 + rng.gen_range(20);
                jobs.push(job(i as u32, t, w, d, p));
            }
            let inst = Instance::new(1, jobs).unwrap();
            let (profit, witness) =
                verify_achievable_m1(&inst, 24).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            assert!(witness.len() <= n);
            let ub = exact_subset_ub(&inst, Speed::ONE, 24).unwrap();
            assert_eq!(profit, ub, "trial {trial}");
        }
    }

    #[test]
    fn rejects_uncertified_instances() {
        let m2 = Instance::new(2, vec![job(0, 0, 3, 9, 1)]).unwrap();
        assert!(matches!(
            verify_achievable_m1(&m2, 24),
            Err(SchedError::Unsupported(_))
        ));
    }
}
