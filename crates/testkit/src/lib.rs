//! A minimal, dependency-free property-testing harness exposing the subset
//! of the `proptest` API this workspace uses.
//!
//! The workspace builds in fully offline environments, so external crates
//! cannot be fetched from a registry. The workspace `Cargo.toml` maps the
//! `proptest` dependency name onto this crate
//! (`proptest = { path = "crates/testkit", package = "dagsched-testkit" }`),
//! which lets every property test keep its idiomatic
//! `use proptest::prelude::*` imports and `proptest!` blocks unchanged.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case panics with the generated inputs
//!   visible in the assertion message; it is not minimized.
//! - **Deterministic sampling.** Every test draws from a fixed-seed
//!   [`TestRng`], so failures reproduce exactly across runs and machines.
//! - **Sample-based strategies.** A [`Strategy`] is just a deterministic
//!   sampler; combinators (`prop_map`, `prop_flat_map`, tuples,
//!   [`collection::vec`]) compose samplers.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator state for property tests (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The fixed-seed RNG used by the `proptest!` macro: every run of a
    /// property test visits the same case sequence.
    pub fn deterministic() -> Self {
        TestRng::seed_from(0x9e37_79b9_7f4a_7c15)
    }

    /// Seed explicitly (for harness-internal tests).
    pub fn seed_from(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling range");
        // Modulo bias is negligible for test-data generation and keeps the
        // sampler branch-free and deterministic.
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration, compatible with `proptest::test_runner::Config`
/// as re-exported through the prelude.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A deterministic value sampler. The real proptest `Strategy` builds value
/// *trees* to support shrinking; this shim only needs `generate`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value and sample it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields clones of one value, compatible with
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range: every draw is valid.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).generate(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies, compatible with `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-lower / exclusive-upper bounds on a generated collection's
    /// length, compatible with `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size` (a fixed `usize` or a
    /// range), compatible with `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min
                + if span <= 1 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, compatible with `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property, compatible with `proptest::prop_assert!`.
/// Failures panic immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property, compatible with
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property, compatible with
/// `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declare property tests, compatible with the `proptest!` macro:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, y in 0.0f64..1.0) {
///         prop_assert!(x < 100 && y < 1.0);
///     }
/// }
/// ```
///
/// Each test evaluates its strategy expressions and body once per case with
/// a fixed-seed [`TestRng`], so runs are fully reproducible.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic();
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                { $body }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..10_000 {
            let x = Strategy::generate(&(5u32..17), &mut rng);
            assert!((5..17).contains(&x));
            let y = Strategy::generate(&(3usize..=3), &mut rng);
            assert_eq!(y, 3);
            let z = Strategy::generate(&(-4i32..9), &mut rng);
            assert!((-4..9).contains(&z));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..10_000 {
            let x = Strategy::generate(&(0.25f64..2.5), &mut rng);
            assert!((0.25..2.5).contains(&x));
        }
    }

    #[test]
    fn ranges_cover_their_endpoints() {
        let mut rng = TestRng::deterministic();
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[Strategy::generate(&(0usize..4), &mut rng)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic();
        let strat = (1usize..=4).prop_flat_map(|k| {
            (
                collection::vec(1u64..10, k),
                collection::vec(0.0f64..1.0, 0..3),
            )
                .prop_map(|(ints, floats)| (ints, floats))
        });
        for _ in 0..1_000 {
            let (ints, floats) = Strategy::generate(&strat, &mut rng);
            assert!((1..=4).contains(&ints.len()));
            assert!(ints.iter().all(|&v| (1..10).contains(&v)));
            assert!(floats.len() < 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        let s = (0u64..1000, 0.0f64..1.0, 0u8..5);
        for _ in 0..100 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 10u32..20), v in collection::vec(0u64..5, 2)) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            prop_assert_eq!(v.len(), 2);
            prop_assert_ne!(b, a);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 0u64..7) {
            prop_assert!(x < 7);
        }
    }
}
