//! A minimal, dependency-free benchmark harness exposing the subset of the
//! `criterion` API this workspace uses.
//!
//! The workspace builds in fully offline environments, so external crates
//! cannot be fetched from a registry. The workspace `Cargo.toml` maps the
//! `criterion` dependency name onto this crate
//! (`criterion = { path = "crates/benchkit", package = "dagsched-benchkit" }`),
//! which lets every `benches/*.rs` target keep its idiomatic
//! `use criterion::{...}` imports unchanged.
//!
//! Semantics: each `bench_function` runs one timed warm-up pass, then
//! `samples` timed passes of the closure, and prints the minimum, median, and
//! mean wall-clock time per pass (plus throughput when configured). This is a
//! harness for relative comparisons on one machine, not a statistics engine —
//! there is no outlier rejection or bootstrap. Output goes to stdout in the
//! stable one-line-per-benchmark format
//! `bench <group>/<id> ... min <t> median <t> mean <t>`.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group; reported as a rate next to
/// the timing line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// `n` logical elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration (reported in binary units).
    Bytes(u64),
    /// `n` bytes processed per iteration (reported in decimal units).
    BytesDecimal(u64),
}

/// Strategy for how `iter_batched` amortizes setup cost. The shim runs one
/// setup per measured routine call regardless, so the variants only exist
/// for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input; setup excluded from timing.
    SmallInput,
    /// Large per-iteration input; setup excluded from timing.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed number of iterations per batch.
    NumIterations(u64),
}

/// Timing context handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one execution of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed = start.elapsed();
    }

    /// Time one execution of `routine` on a fresh input from `setup`,
    /// excluding the setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

/// Shared measurement settings for a group of benchmarks.
#[derive(Debug, Clone, Copy)]
struct GroupConfig {
    samples: usize,
    throughput: Option<Throughput>,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            samples: 10,
            throughput: None,
        }
    }
}

/// Top-level benchmark driver, compatible with `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Match criterion's builder entry point; CLI arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            config: GroupConfig::default(),
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark("", id, GroupConfig::default(), f);
        self
    }
}

/// A named collection of benchmarks sharing sample-count and throughput
/// settings, compatible with `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    config: GroupConfig,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.samples = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim's sample count already bounds
    /// total measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.config.throughput = Some(t);
        self
    }

    /// Measure `f` and print one summary line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.to_string(), self.config, f);
        self
    }

    /// End the group (criterion requires this to flush reports; the shim
    /// prints eagerly, so this is a no-op).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(group: &str, id: &str, config: GroupConfig, mut f: F) {
    let mut b = Bencher::default();
    // Warm-up pass: populates caches and forces lazy init outside the
    // measured samples.
    f(&mut b);
    let mut times: Vec<Duration> = Vec::with_capacity(config.samples);
    for _ in 0..config.samples {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match config.throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!(" ({:.3e} elem/s)", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if median > Duration::ZERO => {
            format!(" ({:.3e} B/s)", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {label:<44} min {min:>12?} median {median:>12?} mean {mean:>12?}{rate}",);
}

/// Bundle benchmark functions into a named group runner, compatible with
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given groups, compatible with
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    criterion_group!(unit_group, target);

    #[test]
    fn group_runs_every_target() {
        unit_group();
    }

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher::default();
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        assert!(b.elapsed >= Duration::from_micros(50));
    }

    #[test]
    fn standalone_bench_function() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
