//! `TraceStats` against a brute-force recount on real engine traces.
//!
//! The unit tests in `crates/engine/src/trace.rs` pin the counting rules on
//! hand-built traces; this test re-derives every aggregate from scratch —
//! by a deliberately naive quadratic scan — on traces produced by actual
//! simulations, where completions, expiries, idle gaps and allotment
//! changes occur in combinations nobody hand-writes.

use dagsched::prelude::*;

/// Quadratic, obviously-correct recount of every `TraceStats` field.
fn recount(trace: &Trace, m: u32, completions: &[(JobId, Time)]) -> TraceStats {
    let ticks = trace.ticks();
    let granted_to = |tick: &dagsched::engine::trace::TraceTick, id: JobId| -> Option<u32> {
        tick.alloc.iter().find(|&&(j, _)| j == id).map(|&(_, k)| k)
    };
    let completed_at = |id: JobId| completions.iter().find(|&&(j, _)| j == id).map(|&(_, t)| t);

    let mut busy_ticks = 0u64;
    let mut processor_ticks = 0u64;
    let mut util_sum = 0.0f64;
    let mut jobs: Vec<JobId> = Vec::new();
    for t in ticks {
        let granted: u64 = t.alloc.iter().map(|&(_, k)| k as u64).sum();
        processor_ticks += granted;
        if granted > 0 {
            busy_ticks += 1;
            util_sum += granted as f64 / m as f64;
        }
        for &(id, _) in &t.alloc {
            if !jobs.contains(&id) {
                jobs.push(id);
            }
        }
    }

    let mut preemptions = 0u64;
    let mut resize_events = 0u64;
    for pair in ticks.windows(2) {
        let (prev, cur) = (&pair[0], &pair[1]);
        if prev.at.after(1) != cur.at {
            continue; // idle gap: ticks are not adjacent in simulated time
        }
        for &(id, k_prev) in &prev.alloc {
            match granted_to(cur, id) {
                None => {
                    if completed_at(id) != Some(cur.at) {
                        preemptions += 1;
                    }
                }
                Some(k_cur) if k_cur != k_prev => resize_events += 1,
                Some(_) => {}
            }
        }
    }

    TraceStats {
        busy_ticks,
        processor_ticks,
        mean_utilization: if busy_ticks > 0 {
            util_sum / busy_ticks as f64
        } else {
            0.0
        },
        preemptions,
        resize_events,
        jobs_run: jobs.len(),
    }
}

fn check(inst: &Instance, sched: &mut dyn OnlineScheduler, m: u32, label: &str) {
    let cfg = SimConfig {
        record_trace: true,
        ..SimConfig::default()
    };
    let r = simulate(inst, sched, &cfg).expect("simulation runs");
    let trace = r.trace.as_ref().expect("trace recorded");
    let completions = r.completions();
    let got = trace.stats(m, &completions);
    let want = recount(trace, m, &completions);
    assert_eq!(
        got, want,
        "{label}: stats disagree with brute-force recount"
    );
    // Cross-check against the engine's own accounting.
    assert_eq!(
        got.processor_ticks,
        trace
            .ticks()
            .iter()
            .flat_map(|t| t.alloc.iter())
            .map(|&(_, k)| k as u64)
            .sum::<u64>(),
        "{label}: processor-tick total"
    );
    assert!(got.jobs_run <= inst.len(), "{label}: phantom jobs in trace");
}

#[test]
fn stats_match_recount_on_random_instances() {
    for seed in [3u64, 58, 477, 901] {
        let m = 3 + (seed % 6) as u32;
        let inst = WorkloadGen::standard(m, 30, seed)
            .generate()
            .expect("valid workload");
        check(&inst, &mut SchedulerS::with_epsilon(m, 1.0), m, "S");
        check(
            &inst,
            &mut SchedulerS::with_epsilon(m, 1.0).work_conserving(),
            m,
            "S-wc",
        );
        check(&inst, &mut GreedyDensity::new(m), m, "GREEDY-DENSITY");
        check(&inst, &mut LeastLaxity::new(m), m, "LLF");
    }
}

#[test]
fn stats_match_recount_under_preemption_heavy_overload() {
    // Tight deadlines force expiries mid-run; LLF reshuffles allotments
    // constantly — the richest source of preemption/resize edge cases.
    let m = 4;
    let inst = WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(5.0, 40.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.1),
        ..WorkloadGen::standard(m, 60, 31)
    }
    .generate()
    .expect("valid workload");
    check(&inst, &mut LeastLaxity::new(m), m, "LLF overload");
    check(&inst, &mut Edf::new(m), m, "EDF overload");
    check(
        &inst,
        &mut SchedulerS::with_epsilon(m, 1.0),
        m,
        "S overload",
    );
}
