//! Cross-crate end-to-end tests: determinism, codec round-trips through the
//! simulator, and allocation validity for every scheduler on many workloads.

use dagsched::prelude::*;
use dagsched::workload::codec;

fn all_schedulers(m: u32) -> Vec<Box<dyn OnlineScheduler>> {
    vec![
        Box::new(SchedulerS::with_epsilon(m, 1.0)),
        Box::new(SchedulerSProfit::with_epsilon(m, 1.0)),
        Box::new(Edf::new(m)),
        Box::new(Fifo::new(m)),
        Box::new(GreedyDensity::new(m)),
        Box::new(LeastLaxity::new(m)),
        Box::new(RandomOrder::new(m, 42)),
    ]
}

#[test]
fn identical_seeds_give_bitwise_identical_results() {
    for seed in [3u64, 17, 99] {
        let gen = WorkloadGen::standard(8, 60, seed);
        let a = gen.generate().unwrap();
        let b = gen.generate().unwrap();
        let mut s1 = SchedulerS::with_epsilon(8, 1.0);
        let mut s2 = SchedulerS::with_epsilon(8, 1.0);
        let r1 = simulate(&a, &mut s1, &SimConfig::default()).unwrap();
        let r2 = simulate(&b, &mut s2, &SimConfig::default()).unwrap();
        assert_eq!(r1.total_profit, r2.total_profit);
        assert_eq!(r1.outcomes, r2.outcomes);
        assert_eq!(r1.ticks_simulated, r2.ticks_simulated);
        assert_eq!(r1.scaled_units_processed, r2.scaled_units_processed);
    }
}

#[test]
fn codec_round_trip_preserves_simulation_behaviour() {
    let gen = WorkloadGen {
        shape: ProfitShape::SteppedDecay {
            extra_steps: 2,
            time_factor: 1.7,
            value_factor: 0.5,
        },
        ..WorkloadGen::standard(4, 40, 1234)
    };
    let inst = gen.generate().unwrap();
    let text = codec::encode(&inst);
    let back = codec::decode(&text).unwrap();
    // Run the same scheduler on both; outcomes must match exactly.
    let mut s1 = SchedulerSProfit::with_epsilon(4, 0.5);
    let mut s2 = SchedulerSProfit::with_epsilon(4, 0.5);
    let r1 = simulate(&inst, &mut s1, &SimConfig::default()).unwrap();
    let r2 = simulate(&back, &mut s2, &SimConfig::default()).unwrap();
    assert_eq!(r1.total_profit, r2.total_profit);
    assert_eq!(r1.outcomes, r2.outcomes);
}

#[test]
fn every_scheduler_produces_valid_allocations_across_workload_space() {
    // The engine rejects invalid allocations with an error; a clean pass
    // over a diverse grid is the system-level contract check.
    let grids = [
        (2u32, DeadlinePolicy::SlackFactor(1.1)),
        (8, DeadlinePolicy::SlackFactor(2.0)),
        (16, DeadlinePolicy::UniformSlack { lo: 0.8, hi: 3.0 }),
    ];
    for (m, deadlines) in grids {
        for seed in [5u64, 6] {
            let inst = WorkloadGen {
                deadlines,
                ..WorkloadGen::standard(m, 50, seed)
            }
            .generate()
            .unwrap();
            for mut sched in all_schedulers(m) {
                let r = simulate(&inst, sched.as_mut(), &SimConfig::default());
                let r = r.unwrap_or_else(|e| panic!("{} on m={m} seed={seed}: {e}", "scheduler"));
                assert_eq!(r.outcomes.len(), 50);
                // Terminal accounting adds up.
                assert_eq!(r.completed() + r.expired() + r.unfinished(), 50);
            }
        }
    }
}

#[test]
fn engine_profit_matches_outcome_sum() {
    let inst = WorkloadGen::standard(8, 80, 77).generate().unwrap();
    for mut sched in all_schedulers(8) {
        let r = simulate(&inst, sched.as_mut(), &SimConfig::default()).unwrap();
        let sum: u64 = r.outcomes.iter().map(|o| o.profit()).sum();
        assert_eq!(sum, r.total_profit, "{}", r.scheduler);
    }
}

#[test]
fn completed_deadline_jobs_always_pay_and_meet_their_deadline() {
    let inst = WorkloadGen::standard(8, 80, 31).generate().unwrap();
    for mut sched in all_schedulers(8) {
        let r = simulate(&inst, sched.as_mut(), &SimConfig::default()).unwrap();
        for (j, o) in inst.jobs().iter().zip(&r.outcomes) {
            if let JobStatus::Completed { at, profit } = o {
                let d = j.abs_deadline().expect("deadline workload");
                assert!(
                    *at <= d,
                    "{}: {} completed at {at} past {d}",
                    r.scheduler,
                    j.id
                );
                assert!(*profit > 0, "a paid completion must earn");
            }
        }
    }
}

#[test]
fn speeds_scale_profit_monotonically_for_work_conserving_policies() {
    let inst = WorkloadGen {
        deadlines: DeadlinePolicy::SlackFactor(1.2),
        ..WorkloadGen::standard(8, 60, 4)
    }
    .generate()
    .unwrap();
    let mut last = 0u64;
    for s in [
        Speed::ONE,
        Speed::new(3, 2).unwrap(),
        Speed::integer(2).unwrap(),
        Speed::integer(4).unwrap(),
    ] {
        let mut sched = GreedyDensity::new(8);
        let r = simulate(&inst, &mut sched, &SimConfig::at_speed(s)).unwrap();
        assert!(
            r.total_profit >= last,
            "profit dropped from {last} to {} at speed {s}",
            r.total_profit
        );
        last = r.total_profit;
    }
}
