//! Section 4's constructions, verified across machine sizes and speeds
//! through the full stack.

use dagsched::prelude::*;

/// Figure 1 / Theorem 1: the gap is exactly 2 − 1/m for every m.
#[test]
fn fig1_gap_exact_for_all_m() {
    for m in [2u32, 3, 4, 8, 16, 32] {
        // chain_len divisible by every m keeps the block phase exact
        // ((m-1)*chain_len block nodes spread evenly over m processors).
        let dag = daggen::fig1(m, 96, 1).into_shared();
        let w = dag.total_work().units();
        let l = dag.span().units();
        assert_eq!(l, w / m as u64, "construction: L = W/m");
        let friendly = lpf_makespan(dag.clone(), m, Speed::ONE).unwrap();
        let adv = adversarial_makespan(dag, m, Speed::ONE).unwrap();
        assert_eq!(friendly.ticks(), w / m as u64);
        assert_eq!(adv.ticks(), (w - l) / m as u64 + l);
        let ratio = adv.as_f64() / friendly.as_f64();
        assert!(
            (ratio - (2.0 - 1.0 / m as f64)).abs() < 1e-9,
            "m={m}: ratio {ratio}"
        );
    }
}

/// Below the 2 − 1/m threshold the adversarial schedule *misses* the
/// clairvoyant deadline; at or above, it meets it (±1 tick discretization).
#[test]
fn theorem1_threshold_is_tight_from_both_sides() {
    let m = 8u32;
    let dag = daggen::fig1(m, 80, 1).into_shared();
    let deadline = dag.total_work().units() / m as u64;
    // Just below: 2 − 1/m − 1/16 = 29/16.
    let below = Speed::new(29, 16).unwrap();
    let t = adversarial_makespan(dag.clone(), m, below).unwrap();
    assert!(
        t.ticks() > deadline,
        "below threshold must miss: {t} vs {deadline}"
    );
    // At the threshold 15/8.
    let at = Speed::theorem1_threshold(m).unwrap();
    let t = adversarial_makespan(dag, m, at).unwrap();
    assert!(
        t.ticks() <= deadline + 1,
        "at threshold must meet (±1): {t} vs {deadline}"
    );
}

/// Figure 2: even the clairvoyant schedule cannot beat
/// `(W−L)/m + L − g(1−1/m)`; deadlines below that are vacuous.
#[test]
fn fig2_floor_for_various_shapes() {
    for (chain, width, g, m) in [(8u32, 64u32, 1u64, 8u32), (20, 120, 2, 4), (5, 33, 3, 16)] {
        let dag = daggen::fig2(chain, width, g).into_shared();
        let w = dag.total_work().as_f64();
        let l = dag.span().as_f64();
        let ms = lpf_makespan(dag, m, Speed::ONE).unwrap().as_f64();
        let bench = (w - l) / m as f64 + l;
        let slack = g as f64 * (1.0 - 1.0 / m as f64);
        assert!(
            ms >= bench - slack - 1e-9,
            "chain={chain} width={width}: makespan {ms} below floor {}",
            bench - slack
        );
        assert!(ms <= bench + 1e-9, "greedy bound");
    }
}

/// A deadline below max(L, W/m) is infeasible for everyone: the exact OPT
/// bound certifies zero, and S earns zero (never a negative result).
#[test]
fn infeasible_deadlines_yield_zero_everywhere() {
    let m = 4u32;
    let dag = daggen::fig1(m, 30, 1).into_shared();
    let tight = dag.total_work().units() / m as u64 - 1; // below W/m
    let inst = Instance::new(
        m,
        vec![JobSpec::new(
            JobId(0),
            Time(0),
            dag,
            StepProfitFn::deadline(Time(tight), 100),
        )],
    )
    .unwrap();
    assert_eq!(exact_subset_ub(&inst, Speed::ONE, 4).unwrap(), 0);
    let mut s = SchedulerS::with_epsilon(m, 1.0);
    let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
    assert_eq!(r.total_profit, 0);
}

/// The Fig.1 workload *inside a mixed instance*: with adversarial picking
/// and tight deadlines the engine reproduces the hardness; with speed
/// 2 the same scheduler completes the jobs (Corollary 1's regime).
#[test]
fn fig1_jobs_in_an_online_stream() {
    let m = 8u32;
    let inst = WorkloadGen {
        m,
        n_jobs: 12,
        seed: 9,
        arrivals: ArrivalProcess::Periodic {
            period: 150,
            jitter: 0,
        },
        family: DagFamily::Fig1 {
            m,
            chain_len: (40, 40),
            grain: 1,
        },
        // Deadline exactly the clairvoyant optimum W/m = 40.
        deadlines: DeadlinePolicy::FixedRelative(40),
        profits: ProfitPolicy::Uniform(10),
        shape: ProfitShape::Deadline,
    }
    .generate()
    .unwrap();

    let adversarial = SimConfig {
        pick: NodePick::AdversarialLowHeight,
        ..SimConfig::default()
    };
    let mut s = GreedyDensity::new(m);
    let r = simulate(&inst, &mut s, &adversarial).unwrap();
    assert_eq!(
        r.total_profit, 0,
        "at unit speed the adversary defeats every semi-non-clairvoyant run"
    );

    let fast = SimConfig {
        pick: NodePick::AdversarialLowHeight,
        speed: Speed::integer(2).unwrap(),
        ..SimConfig::default()
    };
    let mut s = GreedyDensity::new(m);
    let r = simulate(&inst, &mut s, &fast).unwrap();
    assert_eq!(
        r.completed(),
        12,
        "speed 2 > 2 - 1/m closes the gap even adversarially"
    );
}
