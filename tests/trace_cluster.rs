//! Integration tests for execution traces, the work-conserving extension
//! and the cluster-trace workload — the post-paper features.

use dagsched::prelude::*;
use dagsched::workload::ClusterTraceGen;

fn traced() -> SimConfig {
    SimConfig {
        record_trace: true,
        ..SimConfig::default()
    }
}

#[test]
fn trace_accounting_matches_sim_result() {
    let inst = WorkloadGen::standard(8, 60, 11).generate().unwrap();
    let mut s = GreedyDensity::new(8);
    let r = simulate(&inst, &mut s, &traced()).unwrap();
    let trace = r.trace.as_ref().expect("trace recorded");
    assert_eq!(trace.len() as u64, r.ticks_simulated);
    let ts = trace.stats(8, &r.completions());
    // Granted processor-ticks bound actual work: at unit speed a granted
    // processor does at most 1 unit (it may idle if the job has fewer ready
    // nodes than granted processors).
    assert!(ts.processor_ticks >= r.work_processed());
    assert!(ts.mean_utilization > 0.0 && ts.mean_utilization <= 1.0);
    // Every completed job appears in the trace and its granted
    // processor-ticks cover its work.
    for (id, _) in r.completions() {
        assert!(trace.first_start(id).is_some(), "{id} never ran?");
        let w = inst.jobs()[id.index()].work().units();
        assert!(
            trace.processor_ticks_of(id) >= w,
            "{id}: granted {} < work {w}",
            trace.processor_ticks_of(id)
        );
    }
}

#[test]
fn scheduler_s_never_preempts_scheduled_jobs_on_batch_arrivals() {
    // With all jobs present at t=0 and no later arrivals, S's density order
    // inside Q is fixed, so a job that starts executing keeps its allotment
    // until it finishes: zero preemptions (the property motivating the
    // paper's "fewer preemptions" future-work note).
    let inst = WorkloadGen {
        arrivals: ArrivalProcess::AllAtOnce,
        ..WorkloadGen::standard(8, 40, 5)
    }
    .generate()
    .unwrap();
    let mut s = SchedulerS::with_epsilon(8, 1.0);
    let r = simulate(&inst, &mut s, &traced()).unwrap();
    let ts = r.trace.as_ref().unwrap().stats(8, &r.completions());
    assert_eq!(ts.preemptions, 0, "S preempted under batch arrivals");
}

#[test]
fn work_conserving_s_dominates_plain_s_on_cluster_days() {
    for seed in [1u64, 2, 3] {
        let inst = ClusterTraceGen::new(16, 150, seed).generate().unwrap();
        let mut plain = SchedulerS::with_epsilon(16, 1.0);
        let p = simulate(&inst, &mut plain, &traced()).unwrap();
        let mut wc = SchedulerS::with_epsilon(16, 1.0).work_conserving();
        let w = simulate(&inst, &mut wc, &traced()).unwrap();
        assert!(
            w.total_profit >= p.total_profit,
            "seed {seed}: wc {} < plain {}",
            w.total_profit,
            p.total_profit
        );
        // And it uses the machine at least as much.
        let up = p
            .trace
            .as_ref()
            .unwrap()
            .stats(16, &p.completions())
            .processor_ticks;
        let uw = w
            .trace
            .as_ref()
            .unwrap()
            .stats(16, &w.completions())
            .processor_ticks;
        assert!(uw >= up, "seed {seed}: wc used fewer processor-ticks");
    }
}

#[test]
fn cluster_trace_runs_clean_under_every_scheduler() {
    let inst = ClusterTraceGen::new(8, 100, 9).generate().unwrap();
    let schedulers: Vec<Box<dyn OnlineScheduler>> = vec![
        Box::new(SchedulerS::with_epsilon(8, 1.0)),
        Box::new(SchedulerS::with_epsilon(8, 1.0).work_conserving()),
        Box::new(SchedulerSProfit::with_epsilon(8, 1.0)),
        Box::new(Edf::new(8)),
        Box::new(GreedyDensity::new(8)),
    ];
    for mut sched in schedulers {
        let r = simulate(&inst, sched.as_mut(), &SimConfig::default()).unwrap();
        assert_eq!(r.outcomes.len(), 100);
        assert!(r.total_profit > 0, "{} earned nothing", r.scheduler);
    }
}

#[test]
fn trace_is_identical_across_reruns() {
    let inst = ClusterTraceGen::new(8, 80, 4).generate().unwrap();
    let run = || {
        let mut s = SchedulerS::with_epsilon(8, 1.0).work_conserving();
        simulate(&inst, &mut s, &traced()).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.trace.as_ref().unwrap().ticks(),
        b.trace.as_ref().unwrap().ticks(),
        "traces must be bit-identical"
    );
}
