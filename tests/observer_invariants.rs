//! System-level runtime invariant checks through the facade crate.
//!
//! Scheduler S runs under the full verify suite on stress workloads; with
//! `--features verify-strict` (the CI `verify` job) any violation panics at
//! the offending event, otherwise it is collected and reported here.

use dagsched::prelude::*;

fn stress_workload(m: u32, load: f64, slack: f64, n: usize, seed: u64) -> Instance {
    WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(load, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(slack),
        ..WorkloadGen::standard(m, n, seed)
    }
    .generate()
    .unwrap()
}

#[test]
fn scheduler_s_passes_runtime_invariants_under_stress() {
    for seed in 0..4u64 {
        let inst = stress_workload(8, 4.0, 2.0, 80, seed);
        let mut suite = InvariantSuite::for_scheduler_s(AlgoParams::from_epsilon(1.0).unwrap());
        let mut s = SchedulerS::with_epsilon(8, 1.0);
        simulate_observed(&inst, &mut s, &SimConfig::default(), &mut suite).unwrap();
        suite.assert_clean();
    }
}

#[test]
fn work_conserving_variant_passes_with_backfill_allowance() {
    for seed in 0..4u64 {
        let inst = stress_workload(6, 5.0, 1.3, 80, seed);
        let mut suite = InvariantSuite::for_scheduler_s(AlgoParams::from_epsilon(1.0).unwrap())
            .allow_backfill();
        let mut s = SchedulerS::with_epsilon(6, 1.0).work_conserving();
        simulate_observed(&inst, &mut s, &SimConfig::default(), &mut suite).unwrap();
        suite.assert_clean();
    }
}

#[test]
fn observed_and_plain_runs_agree() {
    // Attaching observers must not change the schedule.
    let inst = stress_workload(5, 3.0, 1.5, 60, 17);
    let mut log = EventLog::new();
    let observed = simulate_observed(
        &inst,
        &mut SchedulerS::with_epsilon(5, 1.0),
        &SimConfig::default(),
        &mut log,
    )
    .unwrap();
    let plain = simulate(
        &inst,
        &mut SchedulerS::with_epsilon(5, 1.0),
        &SimConfig::default(),
    )
    .unwrap();
    assert!(observed.same_outcome(&plain));
    assert!(
        log.to_jsonl().lines().count() >= inst.len() + 2,
        "stream too short"
    );
}
