//! Property-based system tests: random workload configurations through the
//! full stack, checking the conservation laws and theory invariants that
//! must hold for *any* input.

use dagsched::prelude::*;
use proptest::prelude::*;

/// A compact, proptest-generated workload description.
#[derive(Debug, Clone)]
struct Cfg {
    m: u32,
    n_jobs: usize,
    seed: u64,
    eps_centi: u32,  // epsilon in 1/100ths, 25..=200
    slack_deci: u32, // slack factor in 1/10ths, 8..=30
    load_deci: u32,  // offered load in 1/10ths, 5..=60
    family_pick: u8, // which DagFamily
    speed_num: u32,  // speed numerator over 4
}

fn arb_cfg() -> impl Strategy<Value = Cfg> {
    (
        2u32..=16,
        5usize..=40,
        0u64..1000,
        25u32..=200,
        8u32..=30,
        5u32..=60,
        0u8..5,
        4u32..=12,
    )
        .prop_map(
            |(m, n_jobs, seed, eps_centi, slack_deci, load_deci, family_pick, speed_num)| Cfg {
                m,
                n_jobs,
                seed,
                eps_centi,
                slack_deci,
                load_deci,
                family_pick,
                speed_num,
            },
        )
}

fn build(cfg: &Cfg) -> Instance {
    let family = match cfg.family_pick {
        0 => DagFamily::Chain {
            len: (1, 8),
            node_work: (1, 6),
        },
        1 => DagFamily::Block {
            width: (1, 24),
            node_work: (1, 6),
        },
        2 => DagFamily::ForkJoin {
            segments: (1, 3),
            width: (1, 6),
            node_work: (1, 4),
        },
        3 => DagFamily::Random {
            n: (1, 15),
            p: 0.3,
            node_work: (1, 5),
        },
        _ => DagFamily::standard_mix((1, 6)),
    };
    WorkloadGen {
        m: cfg.m,
        n_jobs: cfg.n_jobs,
        seed: cfg.seed,
        arrivals: ArrivalProcess::poisson_for_load(cfg.load_deci as f64 / 10.0, 40.0, cfg.m),
        family,
        deadlines: DeadlinePolicy::SlackFactor(cfg.slack_deci as f64 / 10.0),
        profits: ProfitPolicy::UniformDensity { lo: 1.0, hi: 6.0 },
        shape: ProfitShape::Deadline,
    }
    .generate()
    .expect("valid workload")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every run terminates, accounts each job exactly once, pays exactly
    /// the outcome sum, and never processes more work than exists —
    /// for scheduler S at an arbitrary rational speed.
    #[test]
    fn engine_conservation_for_s(cfg in arb_cfg()) {
        let inst = build(&cfg);
        let eps = cfg.eps_centi as f64 / 100.0;
        let speed = Speed::new(cfg.speed_num, 4).expect("positive");
        let mut s = SchedulerS::with_epsilon(inst.m(), eps)
            .with_speed_hint(speed.as_f64());
        let r = simulate(&inst, &mut s, &SimConfig::at_speed(speed)).expect("valid");
        prop_assert_eq!(r.outcomes.len(), cfg.n_jobs);
        prop_assert_eq!(
            r.completed() + r.expired() + r.unfinished(),
            cfg.n_jobs
        );
        let paid: u64 = r.outcomes.iter().map(|o| o.profit()).sum();
        prop_assert_eq!(paid, r.total_profit);
        let total: u64 = inst.jobs().iter().map(|j| j.work().units()).sum();
        prop_assert!(r.work_processed() <= total);
        // Completed deadline jobs finished in time.
        for (j, o) in inst.jobs().iter().zip(&r.outcomes) {
            if let JobStatus::Completed { at, .. } = o {
                prop_assert!(*at <= j.abs_deadline().expect("deadline jobs"));
            }
        }
    }

    /// The Observation-3 invariant holds for arbitrary configurations
    /// (the checker panics inside the run otherwise), including the
    /// work-conserving extension.
    #[test]
    fn observation3_everywhere(cfg in arb_cfg()) {
        let inst = build(&cfg);
        let eps = (cfg.eps_centi as f64 / 100.0).max(0.3);
        let mut s = SchedulerS::with_epsilon(inst.m(), eps)
            .work_conserving()
            .with_invariant_checks();
        let _ = simulate(&inst, &mut s, &SimConfig::default()).expect("valid");
    }

    /// Baselines and S agree with the engine contract on the same inputs,
    /// and none beats the fractional OPT bound.
    #[test]
    fn nobody_beats_the_fractional_bound(cfg in arb_cfg()) {
        let inst = build(&cfg);
        let ub = fractional_ub(&inst, Speed::ONE);
        let mut schedulers: Vec<Box<dyn OnlineScheduler>> = vec![
            Box::new(SchedulerS::with_epsilon(inst.m(), 1.0)),
            Box::new(Edf::new(inst.m())),
            Box::new(GreedyDensity::new(inst.m())),
            Box::new(RandomOrder::new(inst.m(), cfg.seed)),
        ];
        for sched in schedulers.iter_mut() {
            let r = simulate(&inst, sched.as_mut(), &SimConfig::default()).expect("valid");
            prop_assert!(
                r.total_profit <= ub,
                "{} earned {} > fractional UB {}", r.scheduler, r.total_profit, ub
            );
        }
    }

    /// Codec round-trip is lossless for arbitrary generated instances.
    #[test]
    fn codec_total_roundtrip(cfg in arb_cfg()) {
        let inst = build(&cfg);
        let text = dagsched::workload::codec::encode(&inst);
        let back = dagsched::workload::codec::decode(&text).expect("decodes");
        prop_assert_eq!(inst.m(), back.m());
        prop_assert_eq!(inst.len(), back.len());
        for (a, b) in inst.jobs().iter().zip(back.jobs()) {
            prop_assert_eq!(a.arrival, b.arrival);
            prop_assert_eq!(a.work(), b.work());
            prop_assert_eq!(a.span(), b.span());
            prop_assert_eq!(&a.profit, &b.profit);
        }
    }
}
