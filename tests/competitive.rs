//! Competitive-ratio sanity at the system level: on Theorem-2-conformant
//! workloads, S's profit is within a small constant of the exact OPT upper
//! bound — far inside the worst-case guarantee.

use dagsched::prelude::*;

fn instance(m: u32, eps: f64, load: f64, seed: u64) -> Instance {
    WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(load, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.0 + eps),
        profits: ProfitPolicy::UniformDensity { lo: 1.0, hi: 4.0 },
        ..WorkloadGen::standard(m, 16, seed)
    }
    .generate()
    .unwrap()
}

#[test]
fn s_is_constant_competitive_on_slack_workloads() {
    let m = 8u32;
    for eps in [0.5, 1.0, 2.0] {
        let theory = AlgoParams::from_epsilon(eps)
            .unwrap()
            .throughput_competitive_ratio();
        for seed in 0..8u64 {
            let inst = instance(m, eps, 2.0, seed);
            let ub = exact_subset_ub(&inst, Speed::ONE, 24).unwrap();
            if ub == 0 {
                continue;
            }
            let mut s = SchedulerS::with_epsilon(m, eps);
            let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
            assert!(r.total_profit > 0, "eps={eps} seed={seed}: earned nothing");
            let ratio = ub as f64 / r.total_profit as f64;
            assert!(
                ratio <= 30.0,
                "eps={eps} seed={seed}: empirical ratio {ratio:.1} not a small constant"
            );
            assert!(ratio <= theory, "measured ratio above the proven bound?!");
        }
    }
}

#[test]
fn speed_two_plus_eps_restores_competitiveness_on_tight_deadlines() {
    // Corollary 1: tight deadlines (no slack), S at speed 2.5 with the
    // matching hint earns a solid fraction of the 1-speed OPT bound.
    let m = 8u32;
    let mut fractions = Vec::new();
    for seed in 0..8u64 {
        let inst = WorkloadGen {
            arrivals: ArrivalProcess::poisson_for_load(1.5, 60.0, m),
            deadlines: DeadlinePolicy::SlackFactor(1.0),
            ..WorkloadGen::standard(m, 16, seed)
        }
        .generate()
        .unwrap();
        let ub = exact_subset_ub(&inst, Speed::ONE, 24).unwrap();
        if ub == 0 {
            continue;
        }
        let speed = Speed::new(5, 2).unwrap();
        let mut s = SchedulerS::with_epsilon(m, 1.0).with_speed_hint(speed.as_f64());
        let r = simulate(&inst, &mut s, &SimConfig::at_speed(speed)).unwrap();
        fractions.push(r.total_profit as f64 / ub as f64);
    }
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    assert!(
        mean > 0.4,
        "at 2.5x speed S should capture a solid mean fraction, got {mean:.3} ({fractions:?})"
    );
}

#[test]
fn profit_scheduler_is_competitive_on_staircase_workloads() {
    let m = 8u32;
    for seed in 0..6u64 {
        let inst = WorkloadGen {
            arrivals: ArrivalProcess::poisson_for_load(2.0, 60.0, m),
            deadlines: DeadlinePolicy::SlackFactor(2.0),
            shape: ProfitShape::SteppedDecay {
                extra_steps: 3,
                time_factor: 1.8,
                value_factor: 0.45,
            },
            ..WorkloadGen::standard(m, 16, seed)
        }
        .generate()
        .unwrap();
        let ub = exact_subset_ub(&inst, Speed::ONE, 24).unwrap();
        if ub == 0 {
            continue;
        }
        let mut s = SchedulerSProfit::with_epsilon(m, 1.0);
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        assert!(r.total_profit > 0, "seed={seed}: S-profit earned nothing");
        let ratio = ub as f64 / r.total_profit as f64;
        assert!(
            ratio <= 30.0,
            "seed={seed}: general-profit ratio {ratio:.1} not a small constant"
        );
    }
}

#[test]
fn ratios_against_true_opt_on_the_certified_class() {
    // On m = 1 sequential-job instances the demand bound IS the optimum
    // (EDF optimality, certified by opt::verify) — so here the measured
    // ratio is against true OPT, not an upper bound.
    use dagsched::opt::verify_achievable_m1;
    let mut rng = Rng64::seed_from(99);
    for trial in 0..6 {
        let n = 6 + rng.gen_range(6) as usize;
        let mut jobs = Vec::new();
        let mut t = 0u64;
        for i in 0..n {
            t += rng.gen_range(5);
            let w = 1 + rng.gen_range(6);
            let d = w + rng.gen_range(10);
            let p = 1 + rng.gen_range(30);
            jobs.push(JobSpec::new(
                JobId(i as u32),
                Time(t),
                daggen::single(w).into_shared(),
                StepProfitFn::deadline(Time(d), p),
            ));
        }
        let inst = Instance::new(1, jobs).unwrap();
        let (opt, _witness) = verify_achievable_m1(&inst, 24).unwrap();
        if opt == 0 {
            continue;
        }
        for mut sched in [
            Box::new(GreedyDensity::new(1)) as Box<dyn OnlineScheduler>,
            Box::new(Edf::new(1)),
        ] {
            let r = simulate(&inst, sched.as_mut(), &SimConfig::default()).unwrap();
            assert!(
                r.total_profit <= opt,
                "trial {trial}: {} beat TRUE OPT?!",
                r.scheduler
            );
        }
    }
}

#[test]
fn admitting_everything_cannot_beat_the_bound_either() {
    // The no-admission ablation (work-conserving, density-ordered) also
    // stays below UB — i.e. the bound is not trivially loose on this family.
    let m = 8u32;
    for seed in 0..4u64 {
        let inst = instance(m, 1.0, 4.0, seed);
        let ub = exact_subset_ub(&inst, Speed::ONE, 24).unwrap();
        let mut s = dagsched::sched::baselines::SNoAdmission::new(
            m,
            AlgoParams::from_epsilon(1.0).unwrap(),
        );
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        assert!(r.total_profit <= ub);
    }
}
