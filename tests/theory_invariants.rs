//! System-level checks of the paper's lemmas and observations, run through
//! the full stack (generator → engine → scheduler → accounting).

use dagsched::prelude::*;
use dagsched::sched::SchedulerSMetrics;

fn slack_workload(m: u32, eps: f64, load: f64, n: usize, seed: u64) -> Instance {
    WorkloadGen {
        arrivals: ArrivalProcess::poisson_for_load(load, 60.0, m),
        deadlines: DeadlinePolicy::SlackFactor(1.0 + eps),
        profits: ProfitPolicy::UniformDensity { lo: 1.0, hi: 8.0 },
        ..WorkloadGen::standard(m, n, seed)
    }
    .generate()
    .unwrap()
}

/// Observation 3 holds at every queue mutation across a large stress run
/// (the scheduler's internal checker panics otherwise).
#[test]
fn observation3_band_invariant_under_stress() {
    for seed in 0..6u64 {
        let inst = slack_workload(16, 1.0, 5.0, 120, seed);
        let mut s = SchedulerS::with_epsilon(16, 1.0).with_invariant_checks();
        simulate(&inst, &mut s, &SimConfig::default()).unwrap();
    }
}

/// Lemma 5 (system level): `‖C‖ ≥ margin · ‖R‖` on every seed, at several ε.
#[test]
fn lemma5_charging_bound_end_to_end() {
    for eps in [0.5, 1.0, 2.0] {
        let margin = AlgoParams::from_epsilon(eps).unwrap().charge_margin();
        for seed in 0..5u64 {
            let inst = slack_workload(8, eps, 4.0, 100, seed);
            let mut s = SchedulerS::with_epsilon(8, eps);
            let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
            let m: &SchedulerSMetrics = s.metrics();
            if m.started_profit == 0 {
                continue;
            }
            let ratio = r.total_profit as f64 / m.started_profit as f64;
            assert!(
                ratio >= margin,
                "eps={eps} seed={seed}: ||C||/||R|| = {ratio:.4} < margin {margin:.4}"
            );
        }
    }
}

/// Theorem 2's premise ⇒ a *solo* job is always completed by S (the whole
/// point of Observation 2's allotment).
#[test]
fn theorem2_premise_guarantees_solo_completion() {
    let mut rng = Rng64::seed_from(5);
    for trial in 0..20 {
        let dag = daggen::random_dag(&mut rng, 24, 0.15, (1, 8)).into_shared();
        let m = 8u32;
        let eps = 0.5;
        let brent =
            (dag.total_work().as_f64() - dag.span().as_f64()) / m as f64 + dag.span().as_f64();
        let d = ((1.0 + eps) * brent).ceil() as u64 + 1;
        let inst = Instance::new(
            m,
            vec![JobSpec::new(
                JobId(0),
                Time(0),
                dag,
                StepProfitFn::deadline(Time(d), 10),
            )],
        )
        .unwrap();
        let mut s = SchedulerS::with_epsilon(m, eps);
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        assert_eq!(
            r.total_profit, 10,
            "trial {trial}: a Theorem-2-conformant solo job must finish"
        );
    }
}

/// The engine never lets any scheduler beat the exact OPT upper bound.
#[test]
fn no_scheduler_beats_the_opt_upper_bound() {
    for seed in 0..6u64 {
        let inst = slack_workload(4, 1.0, 2.0, 16, seed);
        let ub = exact_subset_ub(&inst, Speed::ONE, 24).unwrap();
        let schedulers: Vec<Box<dyn OnlineScheduler>> = vec![
            Box::new(SchedulerS::with_epsilon(4, 1.0)),
            Box::new(GreedyDensity::new(4)),
            Box::new(Edf::new(4)),
            Box::new(Fifo::new(4)),
        ];
        for mut sched in schedulers {
            let r = simulate(&inst, sched.as_mut(), &SimConfig::default()).unwrap();
            assert!(
                r.total_profit <= ub,
                "seed {seed}: {} earned {} > UB {ub}",
                r.scheduler,
                r.total_profit
            );
        }
    }
}

/// Work conservation through the full stack: processed work equals the sum
/// of per-job progress, bounded by instance totals, and completed jobs
/// account for their full work.
#[test]
fn work_accounting_is_exact() {
    for seed in 0..4u64 {
        let inst = slack_workload(8, 1.0, 3.0, 60, seed);
        let mut s = SchedulerS::with_epsilon(8, 1.0);
        let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
        let completed_work: u64 = inst
            .jobs()
            .iter()
            .filter(|j| r.outcomes[j.id.index()].is_completed())
            .map(|j| j.work().units())
            .sum();
        let total_work: u64 = inst.jobs().iter().map(|j| j.work().units()).sum();
        assert!(r.work_processed() >= completed_work);
        assert!(r.work_processed() <= total_work);
    }
}

/// S's allotments observe Lemma 1 through the live scheduler: the engine
/// never sees an allocation above b²m + 1 per job.
#[test]
fn live_allocations_respect_lemma1() {
    struct Spy {
        inner: SchedulerS,
        cap: f64,
    }
    impl OnlineScheduler for Spy {
        fn name(&self) -> String {
            "spy".into()
        }
        fn on_arrival(&mut self, j: &JobInfo, t: Time) {
            self.inner.on_arrival(j, t);
        }
        fn on_completion(&mut self, i: JobId, t: Time) {
            self.inner.on_completion(i, t);
        }
        fn on_expiry(&mut self, i: JobId, t: Time) {
            self.inner.on_expiry(i, t);
        }
        fn allocate(&mut self, v: &TickView<'_>) -> Vec<(JobId, u32)> {
            let alloc = self.inner.allocate(v);
            for &(id, k) in &alloc {
                assert!(
                    k as f64 <= self.cap,
                    "allocation {k} for {id} above b^2 m + 1 = {}",
                    self.cap
                );
            }
            alloc
        }
    }
    let m = 16u32;
    let params = AlgoParams::from_epsilon(1.0).unwrap();
    let cap = params.b() * params.b() * m as f64 + 1.0;
    for seed in 0..4u64 {
        let inst = slack_workload(m, 1.0, 4.0, 80, seed);
        let mut spy = Spy {
            inner: SchedulerS::new(m, params),
            cap,
        };
        simulate(&inst, &mut spy, &SimConfig::default()).unwrap();
    }
}

/// The general-profit scheduler never over-books a slot: at every tick the
/// engine allocation stays within m (validated by the engine) *and* the
/// profit earned never exceeds the planned profit by job (completing within
/// the assigned deadline pays at least the planned value).
#[test]
fn general_profit_scheduler_accounting() {
    let gen = WorkloadGen {
        shape: ProfitShape::SteppedDecay {
            extra_steps: 3,
            time_factor: 1.8,
            value_factor: 0.45,
        },
        ..WorkloadGen::standard(8, 60, 2024)
    };
    let inst = gen.generate().unwrap();
    let mut s = SchedulerSProfit::with_epsilon(8, 1.0);
    let r = simulate(&inst, &mut s, &SimConfig::default()).unwrap();
    for (j, o) in inst.jobs().iter().zip(&r.outcomes) {
        if let JobStatus::Completed { at, profit } = o {
            if let Some(d) = s.assigned_deadline(j.id) {
                if *at <= d {
                    // Completing within the assigned deadline pays at least
                    // the planned p(D) (profit fn is non-increasing).
                    let planned = j.profit.eval(Time(d.since(j.arrival)));
                    assert!(
                        *profit >= planned,
                        "{}: earned {profit} < planned {planned}",
                        j.id
                    );
                }
            }
        }
    }
}
